"""Design-space exploration: spaces, sweeps, crossovers, frontiers.

Unit coverage for the pure pieces (axis derivation and naming, the
bisection/saturation searches, Pareto classification) plus small
simulation-backed integration checks: a one-axis sensitivity sweep, the
overflow-capacity knob's monotone response, and the seed-invariance of
the claim-relevant scheme orderings along one axis.
"""

import pytest

from repro.core.config import CMP_8, NUMA_16, MACHINES
from repro.core.engine import simulate
from repro.core.supports import complexity_score
from repro.core.taxonomy import (
    EVALUATED_SCHEMES,
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)
from repro.errors import ConfigurationError
from repro.explore import (
    AXES,
    ParamSpace,
    SensitivitySweep,
    find_crossover,
    find_saturation,
    machine_registry,
    pareto_frontier,
)
from repro.runner import SweepRunner, WorkloadSpec


# ----------------------------------------------------------------------
# ParamSpace
# ----------------------------------------------------------------------
class TestParamSpace:
    def test_variant_names_are_stable_and_unique(self):
        space = ParamSpace(NUMA_16)
        names = [v.machine.name for v in space.all_variants()
                 if not v.is_base]
        assert len(names) == len(set(names))
        again = [v.machine.name for v in ParamSpace(NUMA_16).all_variants()
                 if not v.is_base]
        assert names == again
        assert "CC-NUMA-16~l2_size=1M" in names

    def test_base_value_returns_base_unchanged(self):
        space = ParamSpace(NUMA_16)
        for axis in AXES:
            base_value = AXES[axis].base_value(NUMA_16)
            variant = space.variant(axis, base_value)
            assert variant.is_base
            assert variant.machine is NUMA_16

    def test_identical_derivations_are_equal(self):
        a = ParamSpace(NUMA_16).variant("n_procs", 8).machine
        b = ParamSpace(NUMA_16).variant("n_procs", 8).machine
        assert a == b

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown axis"):
            ParamSpace(NUMA_16, axes=("l2_size", "bogus"))
        with pytest.raises(ConfigurationError, match="not part"):
            ParamSpace(NUMA_16, axes=("l2_size",)).axis("n_procs")

    def test_every_axis_derives_valid_configs(self):
        # Deriving must never produce a config that fails validation,
        # on either paper machine.
        for base in (NUMA_16, CMP_8):
            for variant in ParamSpace(base).all_variants():
                assert variant.machine.n_procs > 0
                assert variant.machine.l2.n_sets > 0

    def test_overflow_axis_sets_capacity(self):
        variant = ParamSpace(NUMA_16).variant("overflow_capacity", 16)
        assert variant.machine.costs.overflow_capacity_lines == 16
        assert variant.label == "16"
        unbounded = ParamSpace(NUMA_16).variant("overflow_capacity", None)
        assert unbounded.is_base
        assert unbounded.label == "unbounded"

    def test_hop_latency_axis_scales_network_part_only(self):
        variant = ParamSpace(NUMA_16).variant("hop_latency", 2.0)
        mem = variant.machine.lat_memory_by_hops
        assert mem[0] == 75  # local latency untouched
        assert mem[2] == 75 + 2 * (208 - 75)

    def test_hop_latency_axis_keeps_crossbar_flat(self):
        variant = ParamSpace(CMP_8).variant("hop_latency", 4.0)
        assert variant.machine.lat_memory_by_hops == {0: 102, 1: 102}

    def test_variants_ordered_with_unbounded_last(self):
        labels = [v.label for v in
                  ParamSpace(NUMA_16).variants("overflow_capacity")]
        assert labels[-1] == "unbounded"
        assert labels[:-1] == sorted(labels[:-1], key=lambda s: int(s))

    def test_machine_registry_covers_presets_and_variants(self):
        registry = machine_registry()
        for key in MACHINES:
            assert key in registry
        derived = [name for name in registry if "~" in name]
        assert len(derived) > 15
        assert len(set(registry)) == len(registry)


# ----------------------------------------------------------------------
# Crossover / saturation searches (synthetic metrics)
# ----------------------------------------------------------------------
class TestFindCrossover:
    def test_finds_smallest_satisfying_candidate(self):
        result = find_crossover([1, 2, 4, 8, 16],
                                lambda v: 1.0 / v, threshold=0.25)
        assert result.found and result.value == 4

    def test_bisection_probe_count_is_logarithmic(self):
        candidates = list(range(1, 1025))
        calls = []

        def metric(v):
            calls.append(v)
            return -float(v)

        result = find_crossover(candidates, metric, threshold=-3.0)
        assert result.found and result.value == 3
        assert len(calls) <= 12  # ~log2(1024) + the hi probe

    def test_not_found_reports_last_probe(self):
        result = find_crossover([1, 2, 4], lambda v: 1.0, threshold=0.5)
        assert not result.found
        assert result.value is None
        assert result.metric == 1.0
        assert result.evaluations == 1

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            find_crossover([], lambda v: 0.0, threshold=0.0)

    def test_history_records_probes(self):
        result = find_crossover([1, 2], lambda v: 0.0, threshold=0.5,
                                label=lambda v: f"v{v}")
        assert ("v2", 0.0) in result.history


class TestFindSaturation:
    def test_knee_detected(self):
        table = {1: 1.0, 2: 0.6, 4: 0.55, 8: 0.54}
        result = find_saturation(list(table), table.__getitem__,
                                 marginal=0.10)
        assert result.found and result.value == 4

    def test_never_saturating_reports_not_found(self):
        result = find_saturation([1, 2, 4], lambda v: 1.0 / v,
                                 marginal=0.05)
        assert not result.found

    def test_needs_two_candidates(self):
        with pytest.raises(ConfigurationError):
            find_saturation([1], lambda v: 0.0)


# ----------------------------------------------------------------------
# Pareto classification (synthetic times)
# ----------------------------------------------------------------------
class TestParetoFrontier:
    def test_dominated_point_names_its_dominators(self):
        points = pareto_frontier({
            "SingleT Eager AMM": 0.8,        # complexity 0
            "MultiT&MV Eager AMM": 0.6,      # complexity 2
            "MultiT&MV Lazy AMM": 0.55,      # complexity 5
            "MultiT&MV FMM": 0.56,           # complexity 9
        })
        by_name = {p.scheme_name: p for p in points}
        assert by_name["SingleT Eager AMM"].on_frontier
        assert by_name["MultiT&MV Lazy AMM"].on_frontier
        fmm = by_name["MultiT&MV FMM"]
        assert not fmm.on_frontier
        assert fmm.dominated_by == ("MultiT&MV Lazy AMM",)

    def test_equal_points_do_not_dominate_each_other(self):
        points = pareto_frontier(
            {"a": 0.5, "b": 0.5}, complexities={"a": 1, "b": 1})
        assert all(p.on_frontier for p in points)

    def test_sorted_by_complexity_then_time(self):
        points = pareto_frontier(
            {s.name: 0.5 for s in EVALUATED_SCHEMES})
        scores = [p.complexity for p in points]
        assert scores == sorted(scores)
        assert scores[0] == 0  # SingleT Eager AMM needs no supports
        expected = {s.name: complexity_score(s) for s in EVALUATED_SCHEMES}
        assert all(p.complexity == expected[p.scheme_name] for p in points)


# ----------------------------------------------------------------------
# Simulation-backed integration
# ----------------------------------------------------------------------
SCALE = 0.1


@pytest.fixture(scope="module")
def runner():
    """Cache-less serial runner shared by the integration tests."""
    return SweepRunner(jobs=1, cache=None)


class TestSensitivitySweepIntegration:
    def test_one_axis_curves(self, runner):
        space = ParamSpace(NUMA_16, axes=("l2_size",))
        sweep = SensitivitySweep(
            space, (SINGLE_T_EAGER, MULTI_T_MV_LAZY), ("Euler",),
            scale=SCALE, runner=runner)
        curves = sweep.run(values={"l2_size": (256 * 1024, 512 * 1024)})
        assert set(curves) == {"l2_size"}
        assert len(curves["l2_size"]) == 2  # one per (scheme, app)
        for curve in curves["l2_size"]:
            assert curve.labels == ("256K", "512K")
            assert all(0 < t < 1 for t in curve.norm_times)
            assert all(p.speedup > 1 for p in curve.points)

    def test_seed_invariant_orderings_along_axis(self, runner):
        # The claim-relevant orderings (MultiT&MV <= SingleT Eager;
        # Lazy <= Eager) must hold at every point of the L2-size axis
        # for every seed — the paper's conclusions are not an artifact
        # of one workload draw.
        space = ParamSpace(NUMA_16, axes=("l2_size",))
        for seed in (0, 1, 2):
            sweep = SensitivitySweep(
                space,
                (SINGLE_T_EAGER, MULTI_T_MV_EAGER, MULTI_T_MV_LAZY),
                ("Euler",), scale=SCALE, seed=seed, runner=runner)
            curves = sweep.run(
                values={"l2_size": (256 * 1024, 512 * 1024)})["l2_size"]
            by_scheme = {c.scheme_name: c.norm_times for c in curves}
            single = by_scheme[SINGLE_T_EAGER.name]
            eager = by_scheme[MULTI_T_MV_EAGER.name]
            lazy = by_scheme[MULTI_T_MV_LAZY.name]
            for i in range(len(single)):
                assert eager[i] <= single[i], f"seed {seed}, point {i}"
                assert lazy[i] <= eager[i], f"seed {seed}, point {i}"


class TestOverflowCapacityKnob:
    def test_finite_capacity_slows_overflow_heavy_app(self):
        # P3m at quarter scale pressures the overflow area under
        # MultiT&MV Eager; squeezing the reservation must cost cycles,
        # and the unbounded default must match the base machine exactly
        # (the bit-identity guarantee behind the golden corpus).
        workload = WorkloadSpec(app="P3m", scale=0.25).generate()
        space = ParamSpace(NUMA_16, axes=("overflow_capacity",))
        base = simulate(NUMA_16, MULTI_T_MV_EAGER, workload).total_cycles
        tight = simulate(
            space.variant("overflow_capacity", 2).machine,
            MULTI_T_MV_EAGER, workload).total_cycles
        loose = simulate(
            space.variant("overflow_capacity", 16).machine,
            MULTI_T_MV_EAGER, workload).total_cycles
        assert tight > loose > base
        unbounded = space.variant("overflow_capacity", None)
        assert unbounded.is_base
        assert simulate(unbounded.machine, MULTI_T_MV_EAGER,
                        workload).total_cycles == base

    def test_capacity_validation(self):
        from repro.core.config import CostModel

        with pytest.raises(ConfigurationError, match="positive or None"):
            CostModel(overflow_capacity_lines=0)
