"""Integration tests: the paper's qualitative claims at reduced scale.

These run the real application workloads (scaled down ~4x) through the full
engine and assert the *directional* findings of Section 5. Absolute
magnitudes are checked loosely — the full-scale numbers live in the
benchmark suite and EXPERIMENTS.md.
"""

import pytest

from repro.baselines.sequential import simulate_sequential
from repro.core.config import CMP_8, NUMA_16, NUMA_16_BIG_L2
from repro.core.engine import simulate
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_FMM_SW,
    MULTI_T_MV_LAZY,
    MULTI_T_SV_EAGER,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
)
from repro.workloads.apps import APPLICATION_ORDER, generate_workload

SCALE = 0.25


@pytest.fixture(scope="module")
def runs():
    """All (app, scheme) results on the NUMA machine, cached per module."""
    cache = {}

    def get(app, scheme, machine=NUMA_16):
        key = (app, scheme.name, machine.name)
        if key not in cache:
            workload = generate_workload(app, scale=SCALE)
            cache[key] = simulate(machine, scheme, workload)
        return cache[key]

    return get


class TestSection51SeparationOfTaskState:
    def test_multit_mv_beats_singlet_on_imbalanced_p3m(self, runs):
        assert (runs("P3m", MULTI_T_MV_EAGER).total_cycles
                < 0.8 * runs("P3m", SINGLE_T_EAGER).total_cycles)

    def test_multit_sv_matches_mv_without_privatization(self, runs):
        """Track/Dsmc3d/Euler have no privatization: SV tracks MV."""
        for app in ("Track", "Dsmc3d", "Euler"):
            sv = runs(app, MULTI_T_SV_EAGER).total_cycles
            mv = runs(app, MULTI_T_MV_EAGER).total_cycles
            assert sv == pytest.approx(mv, rel=0.1)

    def test_multit_sv_forfeits_mv_gain_with_privatization(self, runs):
        """Tree/Bdna/Apsi write privatized data early: SV stalls at once
        and loses most of MultiT&MV's advantage."""
        for app in ("Tree", "Bdna", "Apsi"):
            sv = runs(app, MULTI_T_SV_EAGER).total_cycles
            mv = runs(app, MULTI_T_MV_EAGER).total_cycles
            assert sv > 1.15 * mv

    def test_average_mv_gain(self, runs):
        """MultiT&MV reduces average execution time vs SingleT Eager."""
        reductions = [
            1 - (runs(app, MULTI_T_MV_EAGER).total_cycles
                 / runs(app, SINGLE_T_EAGER).total_cycles)
            for app in APPLICATION_ORDER
        ]
        assert sum(reductions) / len(reductions) > 0.15


class TestSection52Laziness:
    def test_laziness_helps_singlet_for_high_ce_apps(self, runs):
        for app in ("Bdna", "Apsi", "Track", "Euler"):
            lazy = runs(app, SINGLE_T_LAZY).total_cycles
            eager = runs(app, SINGLE_T_EAGER).total_cycles
            assert lazy < eager

    def test_laziness_irrelevant_for_low_ce_apps(self, runs):
        """P3m and Tree have low commit/exec ratios: laziness gains little."""
        for app in ("P3m", "Tree"):
            lazy = runs(app, SINGLE_T_LAZY).total_cycles
            eager = runs(app, SINGLE_T_EAGER).total_cycles
            assert lazy > 0.9 * eager

    def test_laziness_helps_mv_for_apsi_track_euler(self, runs):
        for app in ("Apsi", "Track", "Euler"):
            lazy = runs(app, MULTI_T_MV_LAZY).total_cycles
            eager = runs(app, MULTI_T_MV_EAGER).total_cycles
            assert lazy < 0.92 * eager


class TestSection52AMMvsFMM:
    def test_lazy_amm_beats_fmm_under_frequent_squashes(self, runs):
        """Euler squashes often; FMM's log-replay recovery is slower."""
        lazy = runs("Euler", MULTI_T_MV_LAZY)
        fmm = runs("Euler", MULTI_T_MV_FMM)
        assert fmm.violation_events >= 1
        assert fmm.total_cycles > lazy.total_cycles

    def test_fmm_helps_under_buffer_pressure(self, runs):
        """P3m piles versions into the same sets; FMM relieves AMM."""
        lazy = runs("P3m", MULTI_T_MV_LAZY)
        fmm = runs("P3m", MULTI_T_MV_FMM)
        assert fmm.peak_overflow_lines == 0
        assert lazy.peak_overflow_lines > 0
        assert fmm.total_cycles <= lazy.total_cycles

    def test_lazy_l2_relieves_p3m_pressure(self, runs):
        """The 4-MB 16-way L2 closes most of the AMM-FMM gap on P3m."""
        lazy = runs("P3m", MULTI_T_MV_LAZY).total_cycles
        fmm = runs("P3m", MULTI_T_MV_FMM).total_cycles
        big = runs("P3m", MULTI_T_MV_LAZY, NUMA_16_BIG_L2).total_cycles
        assert big < lazy or abs(big - fmm) / fmm < 0.1

    def test_fmm_sw_costs_a_few_percent(self, runs):
        ratios = []
        for app in APPLICATION_ORDER:
            sw = runs(app, MULTI_T_MV_FMM_SW).total_cycles
            hw = runs(app, MULTI_T_MV_FMM).total_cycles
            ratios.append(sw / hw)
        average = sum(ratios) / len(ratios)
        assert 1.0 <= average < 1.2


class TestSection53CMP:
    def test_cmp_gains_smaller_than_numa(self, runs):
        """Buffering choices matter less with low memory latencies."""
        def lazy_gain(machine):
            gains = []
            for app in ("Apsi", "Track", "Euler"):
                eager = runs(app, MULTI_T_MV_EAGER, machine).total_cycles
                lazy = runs(app, MULTI_T_MV_LAZY, machine).total_cycles
                gains.append(1 - lazy / eager)
            return sum(gains) / len(gains)

        assert lazy_gain(CMP_8) < lazy_gain(NUMA_16)

    def test_cmp_busy_fraction_higher(self, runs):
        """The CMP's lower latencies leave relatively more busy time."""
        higher = 0
        for app in APPLICATION_ORDER:
            numa = runs(app, MULTI_T_MV_EAGER).busy_fraction()
            cmp_ = runs(app, MULTI_T_MV_EAGER, CMP_8).busy_fraction()
            higher += cmp_ > numa
        assert higher >= 5


class TestSpeedups:
    @pytest.mark.parametrize("app", APPLICATION_ORDER)
    def test_best_scheme_achieves_parallel_speedup(self, runs, app):
        workload = generate_workload(app, scale=SCALE)
        seq = simulate_sequential(NUMA_16, workload)
        best = runs(app, MULTI_T_MV_LAZY)
        assert best.speedup_over(seq.total_cycles) > 1.5
