"""Shared fixtures and workload-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import (
    CacheGeometry,
    CostModel,
    MachineConfig,
    NUMA_16,
    scaled_machine,
)
from repro.tls.task import OP_COMPUTE, OP_READ, OP_WRITE, TaskSpec
from repro.workloads.base import Workload

#: Word addresses that never collide with generated-region bases.
WORD_A = 0x10
WORD_B = 0x20
WORD_C = 0x400


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/digests.json from the current engine "
             "output instead of diffing against it",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    return request.config.getoption("--update-golden")


def make_task(task_id: int, *ops: tuple[int, int]) -> TaskSpec:
    """Build a TaskSpec from raw (kind, value) pairs."""
    return TaskSpec(task_id=task_id, ops=tuple(ops))


def compute(instr: int) -> tuple[int, int]:
    return (OP_COMPUTE, instr)


def read(word: int) -> tuple[int, int]:
    return (OP_READ, word)


def write(word: int) -> tuple[int, int]:
    return (OP_WRITE, word)


def make_workload(name: str, *tasks: TaskSpec) -> Workload:
    return Workload(name=name, tasks=tuple(tasks))


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """A 2-processor NUMA-style machine for micro-scenarios."""
    return scaled_machine(NUMA_16, 2)


@pytest.fixture
def quad_machine() -> MachineConfig:
    """A 4-processor NUMA-style machine."""
    return scaled_machine(NUMA_16, 4)


@pytest.fixture
def small_cache() -> CacheGeometry:
    """4 sets x 2 ways (512 B): tiny enough to force displacements."""
    return CacheGeometry(size_bytes=512, assoc=2)


@pytest.fixture
def fast_costs() -> CostModel:
    """Cost model with small constants for readable hand-timed tests."""
    return CostModel(
        ipc=1.0,
        commit_writeback_per_line=10,
        token_pass=5,
        final_merge_per_line=2,
        overflow_penalty=4,
        vcl_combine=3,
        crl_select=1,
        ulog_insert=1,
        swlog_instructions=8,
        fmm_recovery_instructions_per_entry=20,
        amm_invalidate_per_line=1.0,
        squash_fixed=10,
    )
