"""Sequential-semantics invariants with every extension feature enabled.

The extensions (HLAP, line-granularity detection, ORB commits, bank
contention) change timing and squash behaviour but must never change the
computed result. Hypothesis re-checks the core invariants with each
feature switched on.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import NUMA_16, scaled_machine
from repro.core.engine import Simulation
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
)
from tests.test_engine_invariants import workloads

_BASE_MACHINE = scaled_machine(NUMA_16, 3)
_CONTENDED = _BASE_MACHINE.with_costs(
    replace(_BASE_MACHINE.costs, memory_bank_service=30))
_ORB = _BASE_MACHINE.with_costs(
    replace(_BASE_MACHINE.costs, eager_commit_mode="orb"))

_VARIANTS = [
    ("hlap", _BASE_MACHINE, MULTI_T_MV_LAZY,
     {"high_level_patterns": True}),
    ("line-granularity", _BASE_MACHINE, MULTI_T_MV_EAGER,
     {"violation_granularity": "line"}),
    ("line-granularity-fmm", _BASE_MACHINE, MULTI_T_MV_FMM,
     {"violation_granularity": "line"}),
    ("contention", _CONTENDED, MULTI_T_MV_LAZY, {}),
    ("orb", _ORB, MULTI_T_MV_EAGER, {}),
]


@pytest.mark.parametrize("name,machine,scheme,kwargs", _VARIANTS,
                         ids=[v[0] for v in _VARIANTS])
@given(workload=workloads())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_extensions_preserve_sequential_semantics(name, machine, scheme,
                                                  kwargs, workload):
    sim = Simulation(machine, scheme, workload, **kwargs)
    result = sim.run()
    assert result.memory_image == workload.sequential_image()
    expected = workload.sequential_reads()
    for key, producer in expected.items():
        assert result.observed_reads[key] == producer
    committed = [tid for tid, _s, _e in result.commit_wavefront]
    assert committed == list(range(workload.n_tasks))
    for proc in sim.procs:
        assert proc.account.total() == pytest.approx(result.total_cycles,
                                                     rel=1e-9, abs=1e-6)


@given(workload=workloads(), service=st.sampled_from([0, 10, 50]))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_contention_never_speeds_up_single_stream(workload, service):
    """On one processor (no concurrency) bank queuing adds zero wait."""
    machine = scaled_machine(NUMA_16, 1).with_costs(
        replace(NUMA_16.costs, memory_bank_service=service))
    baseline = scaled_machine(NUMA_16, 1)
    contended = Simulation(machine, MULTI_T_MV_LAZY, workload).run()
    free = Simulation(baseline, MULTI_T_MV_LAZY, workload).run()
    assert contended.total_cycles == pytest.approx(free.total_cycles)
