"""The sharded shared tier: layout stability, pluggable backends, tiers.

Contracts under test (see ``repro.runner.cache``):

* the on-disk layout is ``<root>/<key[:2]>/<key>.json`` — a stable
  contract (a warm directory must survive releases and be mountable
  behind many frontends);
* :class:`ShardedResultCache` speaks payload semantics over *any*
  :class:`CacheBackend` (a four-method byte store), not just the
  directory backend; and
* a result is bit-identical no matter which tier replays it.
"""

import json

from repro.core.config import NUMA_16
from repro.core.taxonomy import MULTI_T_MV_LAZY
from repro.analysis.serialization import canonical_result_bytes
from repro.runner import (
    CacheBackend,
    DirectoryBackend,
    MemoryResultCache,
    ResultCache,
    SHARD_PREFIX_LEN,
    ShardedResultCache,
    SimJob,
    SweepRunner,
    WorkloadSpec,
    migrate_flat_layout,
    shard_of,
)

SCALE = 0.1


def _job(app="Euler", seed=0):
    return SimJob(machine=NUMA_16,
                  workload=WorkloadSpec(app, seed=seed, scale=SCALE),
                  scheme=MULTI_T_MV_LAZY)


# ----------------------------------------------------------------------
# Shard layout stability
# ----------------------------------------------------------------------
def test_shard_of_is_the_two_hex_prefix():
    assert SHARD_PREFIX_LEN == 2
    assert shard_of("ab12cd") == "ab"


def test_directory_layout_is_root_shard_key(tmp_path):
    cache = ResultCache(tmp_path)
    key = "deadbeef" * 8
    assert cache.path_for(key) == tmp_path / "de" / f"{key}.json"


def test_path_shaped_keys_cannot_escape_the_cache_root(tmp_path):
    import pytest

    backend = DirectoryBackend(tmp_path / "cache")
    outside = tmp_path / "outside.json"
    outside.write_text('{"kind":"sequential"}')
    # A key carrying path components must be rejected outright — never
    # resolved to a path outside the root (".." traversal, or a leading
    # "/" making pathlib discard the root).
    for key in ("../outside", "/" + str(outside.with_suffix("")),
                "..", "aa/../../outside", "AA" + "0" * 62, ""):
        with pytest.raises(ValueError, match="invalid cache key"):
            backend.path_for(key)
        with pytest.raises(ValueError, match="invalid cache key"):
            backend.put(key, b"{}")
        # Read paths degrade to a miss rather than traverse.
        assert backend.get(key) is None
        assert backend.delete(key) is False
    assert outside.exists()  # nothing outside the root was touched


def test_entries_land_in_their_shards_and_enumerate(tmp_path):
    backend = DirectoryBackend(tmp_path)
    keys = {f"{i:02x}" + "0" * 62 for i in (0x00, 0x7f, 0xff)}
    for key in keys:
        backend.put(key, b'{"v":1}')
    for key in keys:
        assert (tmp_path / key[:2] / f"{key}.json").exists()
    assert set(backend.keys()) == keys
    # Stray files outside the shard layout are invisible.
    (tmp_path / "notakey.json").write_bytes(b"{}")
    assert set(backend.keys()) == keys


def test_directory_backend_get_put_delete(tmp_path):
    backend = DirectoryBackend(tmp_path)
    assert backend.get("aa" + "0" * 62) is None
    key = "ab" + "0" * 62
    backend.put(key, b"first")
    assert backend.get(key) == b"first"
    backend.put(key, b"second")  # overwrite allowed
    assert backend.get(key) == b"second"
    assert backend.delete(key) is True
    assert backend.delete(key) is False
    assert backend.get(key) is None
    assert backend.keys() == []


# ----------------------------------------------------------------------
# Pluggable backends
# ----------------------------------------------------------------------
class DictBackend:
    """A minimal in-memory CacheBackend (what a remote store would be)."""

    def __init__(self):
        self.blobs = {}

    def get(self, key):
        return self.blobs.get(key)

    def put(self, key, raw):
        self.blobs[key] = raw

    def keys(self):
        return list(self.blobs)

    def delete(self, key):
        return self.blobs.pop(key, None) is not None


def test_backend_protocol_is_runtime_checkable(tmp_path):
    assert isinstance(DictBackend(), CacheBackend)
    assert isinstance(DirectoryBackend(tmp_path), CacheBackend)
    assert not isinstance(object(), CacheBackend)


def test_sharded_cache_over_a_dict_backend():
    backend = DictBackend()
    cache = ShardedResultCache(backend)
    key = "ff" + "0" * 62
    assert cache.load(key) is None
    cache.store(key, {"kind": "x", "v": 2})
    assert cache.load(key) == {"kind": "x", "v": 2}
    assert key in cache
    assert len(cache) == 1
    assert cache.stats.to_dict() == {"hits": 1, "misses": 1,
                                     "stores": 1, "evictions": 0}
    assert cache.describe() == "DictBackend"
    assert cache.clear() == 1
    assert len(cache) == 0


def test_corrupt_backend_bytes_are_a_miss():
    backend = DictBackend()
    cache = ShardedResultCache(backend)
    backend.put("k", b"{not json")
    assert cache.load("k") is None
    assert cache.stats.misses == 1
    # load_raw is the zero-copy path: it hands back whatever is stored.
    assert cache.load_raw("k") == b"{not json"


def test_runner_accepts_a_custom_backend_tier():
    # The whole point of the protocol: the runner (and so the service)
    # can sit on a non-directory shared tier without code changes.
    backend = DictBackend()
    runner = SweepRunner(jobs=1,
                         cache=ShardedResultCache(backend))
    job = _job()
    first = runner.run(job)
    assert job.cache_key() in backend.blobs
    replay = SweepRunner(jobs=1,
                         cache=ShardedResultCache(backend)).run(job)
    assert canonical_result_bytes(first) == canonical_result_bytes(replay)


def test_result_cache_is_the_directory_sharded_tier(tmp_path):
    cache = ResultCache(tmp_path)
    assert isinstance(cache, ShardedResultCache)
    assert cache.root == tmp_path
    assert cache.describe() == f"directory:{tmp_path}"


# ----------------------------------------------------------------------
# Tier interplay and bit-identity
# ----------------------------------------------------------------------
def test_disk_hit_promotes_into_the_memory_tier(tmp_path):
    job = _job()
    SweepRunner(jobs=1, cache=ResultCache(tmp_path)).run(job)

    memory = MemoryResultCache()
    runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path),
                         memory_cache=memory)
    runner.run(job)
    key = job.cache_key()
    assert key in memory  # promoted on the disk hit
    assert runner.cache.stats.hits == 1
    # Second run is a pure memory hit: the disk tier is not consulted.
    runner.run(job)
    assert runner.cache.stats.hits == 1
    assert memory.stats.hits == 1


def test_result_is_bit_identical_through_every_tier(tmp_path):
    job = _job()
    key = job.cache_key()

    live = SweepRunner(jobs=1, cache=None).run(job)
    expected = canonical_result_bytes(live)

    # Tier 1: computed then stored, replayed from disk by a cold runner.
    disk = ResultCache(tmp_path)
    SweepRunner(jobs=1, cache=disk).run(job)
    from_disk = SweepRunner(jobs=1, cache=ResultCache(tmp_path)).run(job)
    assert canonical_result_bytes(from_disk) == expected

    # Tier 2: the memory tier, fed by the same stored bytes.
    memory = MemoryResultCache()
    warm = SweepRunner(jobs=1, cache=ResultCache(tmp_path),
                       memory_cache=memory)
    warm.run(job)          # disk hit, promotes
    from_memory = warm.run(job)  # memory hit
    assert memory.stats.hits == 1
    assert canonical_result_bytes(from_memory) == expected

    # Tier 3: a foreign backend holding the very same bytes.
    backend = DictBackend()
    backend.put(key, ResultCache(tmp_path).load_raw(key))
    foreign = SweepRunner(jobs=1,
                          cache=ShardedResultCache(backend)).run(job)
    assert canonical_result_bytes(foreign) == expected


def test_raw_and_decoded_paths_see_the_same_payload(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ee" + "0" * 62
    payload = {"kind": "demo", "values": [1, 2, 3]}
    cache.store(key, payload)
    assert json.loads(cache.load_raw(key)) == payload
    assert cache.load(key) == payload


def test_migrate_flat_layout_moves_entries_into_shards(tmp_path):
    key_a = "ab" + "0" * 62
    key_b = "cd" + "1" * 62
    (tmp_path / f"{key_a}.json").write_text('{"kind": "flat-a"}')
    (tmp_path / f"{key_b}.json").write_text('{"kind": "flat-b"}')
    (tmp_path / "notes.json").write_text("{}")

    counts = migrate_flat_layout(tmp_path)
    assert counts == {"migrated": 2, "skipped_existing": 0, "ignored": 1}
    assert not (tmp_path / f"{key_a}.json").exists()

    cache = ResultCache(tmp_path)
    assert cache.load(key_a) == {"kind": "flat-a"}
    assert cache.load(key_b) == {"kind": "flat-b"}
    # Migration is idempotent: nothing flat remains to move.
    assert migrate_flat_layout(tmp_path)["migrated"] == 0


def test_migrate_flat_layout_prefers_the_sharded_copy(tmp_path):
    key = "ee" + "2" * 62
    cache = ResultCache(tmp_path)
    cache.store(key, {"kind": "sharded"})
    (tmp_path / f"{key}.json").write_text('{"kind": "stale-flat"}')

    counts = migrate_flat_layout(tmp_path)
    assert counts["skipped_existing"] == 1
    assert not (tmp_path / f"{key}.json").exists()
    assert ResultCache(tmp_path).load(key) == {"kind": "sharded"}
