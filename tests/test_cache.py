"""Unit tests for the version cache (CTID-tagged, multi-version sets)."""

import pytest

from repro.core.config import CacheGeometry
from repro.errors import SimulationError
from repro.memsys.cache import ARCH_TASK_ID, CacheLine, VersionCache


@pytest.fixture
def cache() -> VersionCache:
    # 4 sets x 2 ways.
    return VersionCache(CacheGeometry(size_bytes=512, assoc=2), name="t")


def line(addr: int, task: int, dirty=False, committed=False) -> CacheLine:
    return CacheLine(addr, task, dirty=dirty, committed=committed)


class TestLookup:
    def test_find_exact_version(self, cache):
        cache.insert(line(0x100, 3, dirty=True), now=1)
        assert cache.find(0x100, 3) is not None
        assert cache.find(0x100, 4) is None
        assert cache.find(0x104, 3) is None

    def test_multi_version_same_set(self, cache):
        """Two versions of the same line occupy two ways of one set."""
        cache.insert(line(0x100, 1, dirty=True), now=1)
        cache.insert(line(0x100, 2, dirty=True), now=2)
        entries = cache.entries(0x100)
        assert {e.task_id for e in entries} == {1, 2}
        assert len(cache) == 2

    def test_find_speculative_excludes_committed_and_arch(self, cache):
        cache.insert(line(0x100, 1, dirty=True), now=1)
        cache.insert(line(0x100, 2, dirty=True, committed=True), now=2)
        spec = cache.find_speculative(0x100)
        assert [e.task_id for e in spec] == [1]
        cache.insert(line(0x200, ARCH_TASK_ID), now=3)
        assert cache.find_speculative(0x200) == []

    def test_touch_counts_hit(self, cache):
        entry = line(0x100, 1)
        cache.insert(entry, now=1)
        cache.touch(entry, now=5)
        assert cache.stats.hits == 1
        assert entry.last_touch == 5


class TestReplacement:
    def test_lru_victim(self, cache):
        # Same set: line addresses differing by n_sets (4).
        cache.insert(line(0, 1), now=1)
        cache.insert(line(4, 1), now=2)
        victim = cache.insert(line(8, 1), now=3)
        assert victim is not None and victim.line_addr == 0

    def test_touch_protects_from_eviction(self, cache):
        first = line(0, 1)
        cache.insert(first, now=1)
        cache.insert(line(4, 1), now=2)
        cache.touch(first, now=3)
        victim = cache.insert(line(8, 1), now=4)
        assert victim.line_addr == 4

    def test_same_version_overwrites_in_place(self, cache):
        cache.insert(line(0x100, 1, dirty=False), now=1)
        victim = cache.insert(line(0x100, 1, dirty=True), now=2)
        assert victim is None
        assert len(cache.entries(0x100)) == 1
        assert cache.find(0x100, 1).dirty

    def test_victim_filter(self, cache):
        pinned = line(0, 1, dirty=True)
        cache.insert(pinned, now=5)
        cache.insert(line(4, 1), now=1)
        victim = cache.insert(line(8, 1), now=6,
                              victim_filter=lambda e: not e.dirty)
        assert victim.line_addr == 4  # dirty line skipped despite older LRU

    def test_all_pinned_raises(self, cache):
        cache.insert(line(0, 1), now=1)
        cache.insert(line(4, 1), now=2)
        with pytest.raises(SimulationError, match="no evictable"):
            cache.insert(line(8, 1), now=3, victim_filter=lambda e: False)

    def test_displacement_stats(self, cache):
        cache.insert(line(0, 1, dirty=True), now=1)
        cache.insert(line(4, 2, dirty=True, committed=True), now=2)
        cache.insert(line(8, 3), now=3)   # evicts speculative dirty
        cache.insert(line(12, 3), now=4)  # evicts committed dirty
        assert cache.stats.displacements == 2
        assert cache.stats.speculative_displacements == 1
        assert cache.stats.committed_dirty_displacements == 1


class TestBulkOperations:
    def test_invalidate_task(self, cache):
        cache.insert(line(0x100, 1, dirty=True), now=1)   # set 0
        cache.insert(line(0x101, 1, dirty=True), now=2)   # set 1
        cache.insert(line(0x100, 2, dirty=True), now=3)   # set 0, 2nd way
        assert cache.invalidate_task(1) == 2
        assert cache.find(0x100, 1) is None
        assert cache.find(0x100, 2) is not None
        assert len(cache) == 1

    def test_mark_committed(self, cache):
        cache.insert(line(0x100, 1, dirty=True), now=1)
        cache.insert(line(0x200, 1, dirty=True), now=2)
        marked = cache.mark_committed(1)
        assert len(marked) == 2
        assert all(e.committed for e in cache.entries(0x100))
        # Idempotent: a second call finds nothing uncommitted.
        assert cache.mark_committed(1) == []

    def test_drain_task_clean(self, cache):
        cache.insert(line(0x100, 1, dirty=True), now=1)
        drained = cache.drain_task(1, clean=True)
        assert len(drained) == 1
        entry = cache.find(0x100, 1)
        assert entry is not None and not entry.dirty and entry.committed

    def test_drain_task_remove(self, cache):
        cache.insert(line(0x100, 1, dirty=True), now=1)
        cache.insert(line(0x200, 1, dirty=False), now=2)
        drained = cache.drain_task(1, clean=False)
        assert [e.line_addr for e in drained] == [0x100]
        assert cache.find(0x100, 1) is None
        # Clean lines are untouched by drain.
        assert cache.find(0x200, 1) is not None

    def test_committed_dirty(self, cache):
        cache.insert(line(0x100, 1, dirty=True, committed=True), now=1)
        cache.insert(line(0x200, 2, dirty=True, committed=False), now=2)
        assert [e.line_addr for e in cache.committed_dirty()] == [0x100]

    def test_remove_nonresident_raises(self, cache):
        with pytest.raises(SimulationError):
            cache.remove(line(0x100, 1))

    def test_iteration_and_len(self, cache):
        for i in range(3):
            cache.insert(line(i, 0), now=i)
        assert len(list(iter(cache))) == len(cache) == 3

    def test_peak_resident_tracked(self, cache):
        for i in range(8):
            cache.insert(line(i, 0), now=i)
        assert cache.stats.peak_resident_lines == 8
