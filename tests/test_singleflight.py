"""SingleFlight: the per-key cache-stampede protection contract.

The properties under test (see ``repro.runner.singleflight``): exactly
one claimant leads per key, joiners receive the leader's exact bytes,
abandon is idempotent and never clobbers a resolved flight, a joiner's
timeout disturbs nobody, and a failed leader wakes every joiner with
the failure instead of deadlocking them.
"""

import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

import pytest

from repro.runner import SingleFlight


def test_first_claim_leads_second_joins():
    flights = SingleFlight()
    flight, leader = flights.claim("k")
    assert leader
    joined, second_leader = flights.claim("k")
    assert not second_leader
    assert joined is flight
    assert flights.pending("k")
    assert len(flights) == 1
    assert flights.stats.led == 1
    assert flights.stats.joined == 1


def test_distinct_keys_fly_independently():
    flights = SingleFlight()
    _, a_leads = flights.claim("a")
    _, b_leads = flights.claim("b")
    assert a_leads and b_leads
    assert len(flights) == 2


def test_resolve_publishes_bytes_and_retires():
    flights = SingleFlight()
    flight, _ = flights.claim("k")
    flights.resolve("k", flight, b'{"x":1}')
    assert flights.wait(flight) == b'{"x":1}'
    assert not flights.pending("k")
    # The key is free again: the next claim leads a fresh flight.
    fresh, leader = flights.claim("k")
    assert leader and fresh is not flight


def test_abandon_propagates_failure_to_waiters():
    flights = SingleFlight()
    flight, _ = flights.claim("k")
    flights.abandon("k", flight, RuntimeError("engine exploded"))
    with pytest.raises(RuntimeError, match="engine exploded"):
        flights.wait(flight)
    assert flights.stats.failed == 1
    assert not flights.pending("k")


def test_abandon_after_resolve_is_a_noop():
    # The leader's finally-block calls abandon unconditionally; it must
    # not overwrite a value that already landed.
    flights = SingleFlight()
    flight, _ = flights.claim("k")
    flights.resolve("k", flight, b"payload")
    flights.abandon("k", flight, RuntimeError("too late"))
    assert flights.wait(flight) == b"payload"
    assert flights.stats.failed == 0


def test_joiner_timeout_leaves_the_flight_alone():
    flights = SingleFlight()
    flight, _ = flights.claim("k")
    with pytest.raises(FutureTimeoutError):
        flights.wait(flight, timeout=0.01)
    assert flights.stats.timeouts == 1
    # The flight is still live; the leader resolves it later and a more
    # patient waiter still gets the bytes.
    assert flights.pending("k")
    flights.resolve("k", flight, b"late but fine")
    assert flights.wait(flight) == b"late but fine"


def test_retire_ignores_superseded_flights():
    # A stale abandon (from a previous generation of the same key) must
    # not retire the current flight.
    flights = SingleFlight()
    first, _ = flights.claim("k")
    flights.resolve("k", first, b"one")
    current, leader = flights.claim("k")
    assert leader
    flights.abandon("k", first, RuntimeError("stale"))
    assert flights.pending("k")  # current flight untouched
    flights.resolve("k", current, b"two")


def test_concurrent_claims_elect_exactly_one_leader():
    flights = SingleFlight()
    barrier = threading.Barrier(8)
    outcomes: list[tuple[Future, bool]] = []
    lock = threading.Lock()

    def contend():
        barrier.wait()
        flight, leader = flights.claim("hot")
        with lock:
            outcomes.append((flight, leader))

    threads = [threading.Thread(target=contend) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    leaders = [f for f, led in outcomes if led]
    assert len(leaders) == 1
    # Every contender holds the same Future object.
    assert len({id(f) for f, _ in outcomes}) == 1
    flights.resolve("hot", leaders[0], b"once")
    assert all(flights.wait(f) == b"once" for f, _ in outcomes)
    assert flights.stats.led == 1
    assert flights.stats.joined == 7


def test_waiters_block_until_the_leader_lands():
    flights = SingleFlight()
    flight, _ = flights.claim("k")
    seen: list[bytes] = []

    def join():
        seen.append(flights.wait(flight, timeout=5.0))

    waiters = [threading.Thread(target=join) for _ in range(4)]
    for t in waiters:
        t.start()
    flights.resolve("k", flight, b"shared")
    for t in waiters:
        t.join()
    assert seen == [b"shared"] * 4


def test_stats_to_dict_round_trips():
    flights = SingleFlight()
    flight, _ = flights.claim("k")
    flights.claim("k")
    flights.resolve("k", flight, b"x")
    assert flights.stats.to_dict() == {
        "led": 1, "joined": 1, "failed": 0, "timeouts": 0,
    }
