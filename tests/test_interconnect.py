"""Unit tests for interconnect topologies."""

import pytest

from repro.errors import ConfigurationError
from repro.interconnect import Crossbar, Mesh2D, topology


class TestMesh2D:
    def test_hops_manhattan(self):
        mesh = Mesh2D(side=4, n_nodes=16)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 1) == 1
        assert mesh.hops(0, 4) == 1
        assert mesh.hops(0, 5) == 2
        assert mesh.hops(0, 15) == 6

    def test_symmetry(self):
        mesh = Mesh2D(side=4, n_nodes=16)
        for a in range(16):
            for b in range(16):
                assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_triangle_inequality(self):
        mesh = Mesh2D(side=3, n_nodes=9)
        for a in range(9):
            for b in range(9):
                for c in range(9):
                    assert (mesh.hops(a, c)
                            <= mesh.hops(a, b) + mesh.hops(b, c))

    def test_diameter(self):
        assert Mesh2D(side=4, n_nodes=16).diameter == 6
        assert Mesh2D(side=2, n_nodes=4).diameter == 2

    def test_route_endpoints_and_length(self):
        mesh = Mesh2D(side=4, n_nodes=16)
        route = mesh.route(0, 15)
        assert route[0] == 0 and route[-1] == 15
        assert len(route) == mesh.hops(0, 15) + 1
        # Consecutive route nodes are mesh neighbours.
        for a, b in zip(route, route[1:]):
            assert mesh.hops(a, b) == 1

    def test_partial_mesh(self):
        mesh = Mesh2D(side=3, n_nodes=7)
        assert mesh.hops(0, 6) == 2

    def test_bad_configs(self):
        with pytest.raises(ConfigurationError):
            Mesh2D(side=0, n_nodes=1)
        with pytest.raises(ConfigurationError):
            Mesh2D(side=2, n_nodes=5)
        with pytest.raises(ConfigurationError):
            Mesh2D(side=2, n_nodes=4).hops(0, 7)

    def test_average_hops(self):
        mesh = Mesh2D(side=2, n_nodes=4)
        # Pairs at distance 1: 8 of 12; distance 2: 4 of 12.
        assert mesh.average_hops() == pytest.approx((8 * 1 + 4 * 2) / 12)


class TestCrossbar:
    def test_hops(self):
        xbar = Crossbar(n_nodes=8)
        assert xbar.hops(3, 3) == 0
        assert xbar.hops(0, 7) == 1
        assert xbar.diameter == 1

    def test_single_node(self):
        assert Crossbar(n_nodes=1).diameter == 0

    def test_bad(self):
        with pytest.raises(ConfigurationError):
            Crossbar(n_nodes=0)


class TestTopologyFactory:
    def test_mesh_when_side_given(self):
        assert isinstance(topology(16, 4), Mesh2D)

    def test_crossbar_when_no_side(self):
        assert isinstance(topology(8, None), Crossbar)

    def test_cached(self):
        assert topology(16, 4) is topology(16, 4)
