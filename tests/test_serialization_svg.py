"""Tests for JSON serialization and SVG figure rendering."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.analysis.experiments import ExperimentContext, run_figure9
from repro.analysis.serialization import (
    load_workload,
    result_summary_from_dict,
    result_to_dict,
    save_result,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)
from repro.analysis.svgplot import (
    SvgBar,
    render_grouped_bars_svg,
    save_svg,
    scheme_bars_to_svg,
)
from repro.core.config import NUMA_16, scaled_machine
from repro.core.engine import simulate
from repro.core.taxonomy import MULTI_T_MV_LAZY
from repro.errors import ConfigurationError, WorkloadError
from repro.workloads.apps import generate_workload
from tests.conftest import compute, make_task, make_workload, read, write


class TestWorkloadSerialization:
    def test_round_trip_handmade(self):
        workload = make_workload(
            "rt", make_task(0, compute(10), write(5), read(5)))
        clone = workload_from_dict(workload_to_dict(workload))
        assert clone == workload

    def test_round_trip_generated(self):
        workload = generate_workload("Apsi", scale=0.05)
        clone = workload_from_dict(workload_to_dict(workload))
        assert clone.tasks == workload.tasks
        assert clone.name == workload.name
        assert clone.sequential_image() == workload.sequential_image()

    def test_round_trip_through_file(self, tmp_path):
        workload = generate_workload("Track", scale=0.05)
        path = tmp_path / "track.json"
        save_workload(workload, str(path))
        clone = load_workload(str(path))
        assert clone.tasks == workload.tasks

    def test_round_trip_preserves_simulation(self):
        machine = scaled_machine(NUMA_16, 4)
        workload = generate_workload("Euler", scale=0.08)
        clone = workload_from_dict(workload_to_dict(workload))
        original = simulate(machine, MULTI_T_MV_LAZY, workload)
        replayed = simulate(machine, MULTI_T_MV_LAZY, clone)
        assert replayed.total_cycles == original.total_cycles

    def test_bad_format_rejected(self):
        with pytest.raises(WorkloadError, match="format"):
            workload_from_dict({"format": 99, "tasks": []})


class TestResultSerialization:
    @pytest.fixture()
    def result(self):
        machine = scaled_machine(NUMA_16, 4)
        workload = generate_workload("Tree", scale=0.08)
        return simulate(machine, MULTI_T_MV_LAZY, workload)

    def test_to_dict_is_json_ready(self, result):
        data = result_to_dict(result)
        text = json.dumps(data)
        assert "MultiT&MV Lazy AMM" in text
        assert data["total_cycles"] == result.total_cycles
        assert data["traffic"]["line_writebacks"] >= 0
        assert "memory_image" not in data

    def test_image_optional(self, result):
        data = result_to_dict(result, include_image=True)
        assert len(data["memory_image"]) == len(result.memory_image)

    def test_summary_validation(self, result):
        summary = result_summary_from_dict(result_to_dict(result))
        assert summary["scheme"].name == "MultiT&MV Lazy AMM"
        assert summary["total_cycles"] == result.total_cycles

    def test_summary_rejects_unknown_category(self, result):
        data = result_to_dict(result)
        data["cycles_by_category"]["teleport"] = 1.0
        with pytest.raises(WorkloadError, match="unknown cycle"):
            result_summary_from_dict(data)

    def test_save_result(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["workload"] == "Tree"


class TestSvgRendering:
    def test_well_formed_xml(self):
        svg = render_grouped_bars_svg(
            {"App": [SvgBar("a", 1.0, 0.5, "2.0"),
                     SvgBar("b", 0.5, 0.8, "4.0")]},
            title="test figure",
        )
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        # Background + 2 segments per bar.
        assert len(rects) >= 5

    def test_bar_heights_proportional(self):
        svg = render_grouped_bars_svg(
            {"G": [SvgBar("tall", 2.0, 1.0), SvgBar("short", 1.0, 1.0)]},
            title="heights",
        )
        root = ET.fromstring(svg)
        heights = sorted(
            float(e.get("height"))
            for e in root.iter()
            if e.tag.endswith("rect") and e.get("fill") == "#26547c"
            and e.get("width") == "18"  # bars, not the legend swatch
        )
        assert heights[1] == pytest.approx(2 * heights[0], rel=1e-6)

    def test_escaping(self):
        svg = render_grouped_bars_svg(
            {"<A&B>": [SvgBar("x<y>&", 1.0, 0.5)]}, title="T&T")
        ET.fromstring(svg)  # must parse despite special characters

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SvgBar("bad", -1.0, 0.5)
        with pytest.raises(ConfigurationError):
            SvgBar("bad", 1.0, 1.5)
        with pytest.raises(ConfigurationError):
            render_grouped_bars_svg({}, title="empty")

    def test_figure9_to_svg(self, tmp_path):
        ctx = ExperimentContext(scale=0.05)
        figure = run_figure9(ctx)
        svg = scheme_bars_to_svg(figure)
        root = ET.fromstring(svg)
        texts = [e.text for e in root.iter() if e.tag.endswith("text")]
        assert any("P3m" in (t or "") for t in texts)
        path = tmp_path / "figure9.svg"
        save_svg(svg, str(path))
        assert path.read_text().startswith("<svg")
