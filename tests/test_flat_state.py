"""Lock-step tests for the engine-core v3 flat state columns.

Two pillars of the v3 layout are exercised here against plain
dict-based references implementing the v2 semantics:

* :class:`repro.memsys.cache.VersionCache` — the fused hot-path
  :meth:`~repro.memsys.cache.VersionCache.install` must be
  operation-for-operation equivalent to constructing a
  :class:`~repro.memsys.cache.CacheLine` and calling :meth:`insert`
  (same flag merging, LRU victim, statistics), and the slot columns
  (``_dirty`` / ``_committed`` / ``_touch`` / ``_key_slot`` /
  ``_view``) must stay consistent with the view objects after any
  operation stream.
* :class:`repro.tls.versions.VersionDirectory` — the interned rows
  (``_row`` / ``_producers`` / ``_readers`` / ``_words``) must answer
  every protocol query exactly like an unoptimized per-word
  two-dict reference.

The engine's batched drain loop binds these columns directly in its
inlined fast paths, so a divergence here is a bit-identity bug even if
the public API still looks healthy.
"""

from bisect import bisect_right, insort

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CacheGeometry
from repro.memsys.cache import ARCH_TASK_ID, KEY_BIAS, KEY_SHIFT, CacheLine, VersionCache
from repro.tls.versions import VersionDirectory

N_SETS = 4
ASSOC = 2
GEOMETRY = CacheGeometry(size_bytes=N_SETS * ASSOC * 64, assoc=ASSOC)

LINES = [0, 1, 2, 3, 4, 5, 8, 12]
TASKS = [ARCH_TASK_ID, 0, 1, 2, 3]


# ----------------------------------------------------------------------
# Cache: fused install() vs reference insert(CacheLine(...))
# ----------------------------------------------------------------------

CACHE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("install"), st.sampled_from(LINES),
                  st.sampled_from(TASKS), st.booleans(), st.booleans()),
        st.tuples(st.just("find"), st.sampled_from(LINES),
                  st.sampled_from(TASKS)),
        st.tuples(st.just("mark_committed"), st.sampled_from(TASKS)),
        st.tuples(st.just("drain_clean"), st.sampled_from(TASKS)),
        st.tuples(st.just("invalidate"), st.sampled_from(TASKS)),
    ),
    min_size=0, max_size=60,
)


def _snapshot(cache):
    """Observable state: every resident (line, task) with its flags."""
    return sorted(
        (e.line_addr, e.task_id, e.dirty, e.committed, e.last_touch)
        for e in cache
    )


def _stats_tuple(cache):
    s = cache.stats
    return (s.hits, s.misses, s.displacements,
            s.speculative_displacements, s.committed_dirty_displacements,
            s.peak_resident_lines)


def _check_columns(cache):
    """The slot columns and the view objects must agree everywhere."""
    seen_slots = set()
    for entry in cache:
        slot = entry._slot
        assert entry._cache is cache
        assert slot not in seen_slots
        seen_slots.add(slot)
        key = (entry.line_addr << KEY_SHIFT) + entry.task_id + KEY_BIAS
        assert cache._key_slot[key] == slot
        assert cache._view[slot] is entry
        assert entry.dirty == bool(cache._dirty[slot])
        assert entry.committed == bool(cache._committed[slot])
        assert entry.last_touch == cache._touch[slot]
    assert len(seen_slots) == len(cache) == cache._resident
    assert len(cache._key_slot) == len(cache)
    free = set(cache._free)
    assert not (free & seen_slots)
    for slot in free:
        assert cache._view[slot] is None


@settings(max_examples=150, deadline=None)
@given(CACHE_OPS)
def test_install_lockstep_with_insert(ops):
    fused = VersionCache(GEOMETRY, name="fused")
    reference = VersionCache(GEOMETRY, name="reference")
    clock = 0.0
    for op in ops:
        clock += 1.0
        if op[0] == "install":
            _tag, line, task, dirty, committed = op
            victim_a = fused.install(line, task, dirty=dirty,
                                     committed=committed, now=clock)
            victim_b = reference.insert(
                CacheLine(line, task, dirty=dirty, committed=committed),
                clock)
            assert (victim_a is None) == (victim_b is None)
            if victim_a is not None:
                assert (victim_a.line_addr, victim_a.task_id,
                        victim_a.dirty, victim_a.committed,
                        victim_a.last_touch) == (
                    victim_b.line_addr, victim_b.task_id,
                    victim_b.dirty, victim_b.committed,
                    victim_b.last_touch)
        elif op[0] == "find":
            _tag, line, task = op
            hit_a = fused.find(line, task)
            hit_b = reference.find(line, task)
            assert (hit_a is None) == (hit_b is None)
            if hit_a is not None:
                fused.touch(hit_a, clock)
                reference.touch(hit_b, clock)
        elif op[0] == "mark_committed":
            marked_a = fused.mark_committed(op[1])
            marked_b = reference.mark_committed(op[1])
            assert len(marked_a) == len(marked_b)
        elif op[0] == "drain_clean":
            drained_a = fused.drain_task(op[1], clean=True)
            drained_b = reference.drain_task(op[1], clean=True)
            assert len(drained_a) == len(drained_b)
        else:  # invalidate
            assert (fused.invalidate_task(op[1])
                    == reference.invalidate_task(op[1]))
        assert _snapshot(fused) == _snapshot(reference)
        assert _stats_tuple(fused) == _stats_tuple(reference)
        for line in LINES:
            assert fused.version_count(line) == reference.version_count(line)
        _check_columns(fused)
        _check_columns(reference)


@settings(max_examples=100, deadline=None)
@given(CACHE_OPS)
def test_find_returns_interned_identity(ops):
    """find() must return the same view object until removal."""
    cache = VersionCache(GEOMETRY)
    clock = 0.0
    for op in ops:
        clock += 1.0
        if op[0] == "install":
            _tag, line, task, dirty, committed = op
            before = cache.find(line, task)
            cache.install(line, task, dirty=dirty, committed=committed,
                          now=clock)
            after = cache.find(line, task)
            assert after is not None
            if before is not None:
                # Re-installing an existing version keeps the object.
                assert after is before
                assert before._cache is cache
        elif op[0] == "invalidate":
            dropped = cache.lines_of_task(op[1])
            cache.invalidate_task(op[1])
            for entry in dropped:
                # Detached snapshots: stable values, no cache binding.
                assert entry._cache is None
                assert cache.find(entry.line_addr, entry.task_id) is not entry


# ----------------------------------------------------------------------
# Directory: interned rows vs per-word two-dict reference
# ----------------------------------------------------------------------

class ReferenceDirectory:
    """v2-semantics reference: two independent per-word dicts."""

    def __init__(self):
        self.producers = {}
        self.readers = {}
        self.reads = 0
        self.writes = 0
        self.violations = 0
        self.forwarded_reads = 0

    def version_for_read(self, word, reader):
        producers = self.producers.get(word, [])
        idx = bisect_right(producers, reader)
        return producers[idx - 1] if idx else ARCH_TASK_ID

    def record_read(self, word, reader, seen):
        self.reads += 1
        if seen == reader:
            return
        if seen != ARCH_TASK_ID:
            self.forwarded_reads += 1
        readers = self.readers.setdefault(word, {})
        previous = readers.get(reader)
        if previous is None or seen < previous:
            readers[reader] = seen

    def record_write(self, word, producer):
        self.writes += 1
        producers = self.producers.setdefault(word, [])
        idx = bisect_right(producers, producer)
        if idx == 0 or producers[idx - 1] != producer:
            insort(producers, producer)
        violated = sorted(
            reader for reader, seen in self.readers.get(word, {}).items()
            if reader > producer and seen < producer
        )
        if violated:
            self.violations += 1
        return violated

    def purge_task(self, task, written, read):
        for word in written:
            producers = self.producers.get(word)
            if producers:
                idx = bisect_right(producers, task)
                if idx and producers[idx - 1] == task:
                    producers.pop(idx - 1)
        for word in read:
            self.readers.get(word, {}).pop(task, None)

    def forget_reader(self, task):
        for readers in self.readers.values():
            readers.pop(task, None)

    def final_image(self):
        return {word: producers[-1]
                for word, producers in self.producers.items() if producers}

    def words_written(self):
        return {word for word, producers in self.producers.items()
                if producers}


WORDS = list(range(8))
DIR_TASKS = list(range(5))

DIR_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("read"), st.sampled_from(WORDS),
                  st.sampled_from(DIR_TASKS)),
        st.tuples(st.just("write"), st.sampled_from(WORDS),
                  st.sampled_from(DIR_TASKS)),
        st.tuples(st.just("purge"), st.sampled_from(DIR_TASKS)),
        st.tuples(st.just("forget"), st.sampled_from(DIR_TASKS)),
    ),
    min_size=0, max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(DIR_OPS)
def test_directory_rows_lockstep_with_reference(ops):
    directory = VersionDirectory()
    reference = ReferenceDirectory()
    for op in ops:
        if op[0] == "read":
            _tag, word, reader = op
            version = directory.version_for_read(word, reader)
            assert version == reference.version_for_read(word, reader)
            directory.record_read(word, reader, version)
            reference.record_read(word, reader, version)
        elif op[0] == "write":
            _tag, word, producer = op
            assert (directory.record_write(word, producer)
                    == reference.record_write(word, producer))
        elif op[0] == "purge":
            task = op[1]
            written = reference.words_written()
            read = set(WORDS)
            directory.purge_task(task, written, read)
            reference.purge_task(task, written, read)
        else:  # forget
            directory.forget_reader(op[1])
            reference.forget_reader(op[1])
        stats = directory.stats
        assert (stats.reads, stats.writes, stats.violations,
                stats.forwarded_reads) == (
            reference.reads, reference.writes, reference.violations,
            reference.forwarded_reads)
        for word in WORDS:
            assert (directory.producers_of(word)
                    == reference.producers.get(word, []))
            for bound in DIR_TASKS:
                assert (directory.latest_version_at_most(word, bound)
                        == reference.version_for_read(word, bound))
        assert directory.final_image() == reference.final_image()
        assert directory.words_written() == reference.words_written()
        # Row-column consistency: _row and _words are exact inverses.
        for word, row in directory._row.items():
            assert directory._words[row] == word
        assert len(directory._producers) == len(directory._words)
        assert len(directory._readers) == len(directory._words)
