"""Tests for the experiment harness, report rendering, and CLI."""

import pytest

from repro.analysis.cli import main
from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    run_figure1,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_summary,
    run_table3,
    run_tables12,
)
from repro.analysis.report import Bar, render_bars, render_table, render_task_timeline
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)

#: Tiny scale shared by every harness test: full workloads are benchmarks.
SCALE = 0.08


@pytest.fixture(scope="module")
def ctx() -> ExperimentContext:
    return ExperimentContext(scale=SCALE)


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["a", "bb"], [(1, "x"), (22, "yy")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(l) for l in lines[2:]}) <= 2

    def test_bars_scale_to_peak(self):
        text = render_bars([
            Bar("x", 1.0, 0.5, "one"),
            Bar("longer", 2.0, 0.25, "two"),
        ])
        assert "x" in text and "longer" in text
        assert "█" in text and "░" in text

    def test_timeline_marks_exec_and_commit(self):
        text = render_task_timeline(
            [(0, 0, 0.0, 50.0, 50.0, 60.0), (1, 1, 0.0, 30.0, 60.0, 70.0)],
            total=70.0, n_procs=2)
        assert "P0" in text and "P1" in text
        assert "0" in text and "c" in text


class TestStaticExperiments:
    def test_tables12_renders(self):
        text = run_tables12().render()
        assert "CTID" in text
        assert "task-ID field" in text
        assert "MultiT&MV FMM" in text

    def test_figure4_renders(self):
        text = run_figure4().render()
        assert "Hydra" in text and "LRPD" in text

    def test_figure8_renders(self):
        text = run_figure8().render()
        assert "commit wavefront" in text


class TestMicroFigures:
    def test_figure5_orders_schemes(self):
        result = run_figure5()
        totals = result.total_cycles
        assert (totals["MultiT&MV Eager AMM"]
                <= totals["MultiT&SV Eager AMM"])
        assert (totals["MultiT&MV Eager AMM"]
                < totals["SingleT Eager AMM"])
        assert "P0" in result.render()

    def test_figure6_lazy_compresses_wavefront(self):
        result = run_figure6()
        def span(name):
            intervals, total, _n = result.timelines[name]
            return total
        assert span("MultiT&MV Lazy AMM") < span("MultiT&MV Eager AMM")
        assert span("SingleT Lazy AMM") < span("SingleT Eager AMM")


class TestMeasuredExperiments:
    def test_figure1_rows(self, ctx):
        result = run_figure1(ctx)
        assert len(result.rows) == 7
        by_app = {row[0]: row for row in result.rows}
        # P3m piles up far more speculative tasks than Euler.
        assert by_app["P3m"][1] > by_app["Euler"][1]
        # Privatization fractions: Tree high, Track low.
        assert by_app["Tree"][4] > 0.9
        assert by_app["Track"][4] < 0.1
        assert "Figure 1" in result.render()

    def test_table3_ranks_commit_exec(self, ctx):
        result = run_table3(ctx)
        ce = {row[0]: row[2] for row in result.rows}
        assert ce["Apsi"] > ce["Tree"]
        assert ce["Euler"] > ce["Tree"]
        cmp_ce = {row[0]: row[3] for row in result.rows}
        for app in cmp_ce:
            assert cmp_ce[app] < ce[app]

    def test_figure9_structure(self, ctx):
        result = run_figure9(ctx)
        assert set(result.cells) == {
            "P3m", "Tree", "Bdna", "Apsi", "Track", "Dsmc3d", "Euler"}
        assert result.averages[SINGLE_T_EAGER.name] == pytest.approx(1.0)
        # MultiT&MV is on average at least as fast as SingleT.
        assert (result.averages[MULTI_T_MV_EAGER.name]
                < result.averages[SINGLE_T_EAGER.name])
        assert "speedup" in result.render()

    def test_figure10_includes_lazy_l2(self, ctx):
        result = run_figure10(ctx)
        assert "P3m" in result.lazy_l2
        assert result.bars.averages[MULTI_T_MV_EAGER.name] == pytest.approx(
            1.0)
        assert "Lazy.L2" in result.render()

    def test_figure11_runs_on_cmp(self, ctx):
        result = run_figure11(ctx)
        assert result.machine_name == "CMP-8"

    def test_summary_rows(self, ctx):
        result = run_summary(ctx)
        text = result.render()
        assert "MultiT&MV vs SingleT" in text
        assert len(result.rows) == 7

    def test_average_reduction_identity(self, ctx):
        result = run_figure9(ctx)
        assert result.average_reduction(
            SINGLE_T_EAGER, SINGLE_T_EAGER) == pytest.approx(0.0)

    def test_context_caches_runs(self, ctx):
        from repro.core.config import NUMA_16

        first = ctx.run(NUMA_16, MULTI_T_MV_LAZY, "Tree")
        second = ctx.run(NUMA_16, MULTI_T_MV_LAZY, "Tree")
        assert first is second


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_static_experiment_via_cli(self, capsys):
        assert main(["tables12"]) == 0
        assert "CTID" in capsys.readouterr().out

    def test_measured_experiment_via_cli(self, capsys):
        assert main(["figure1", "--scale", "0.05"]) == 0
        assert "P3m" in capsys.readouterr().out


class TestBeyondPaperExperiments:
    def test_breakdown_fractions_sum_to_one(self, ctx):
        from repro.analysis.experiments import run_breakdown

        result = run_breakdown(ctx)
        for per_scheme in result.cells.values():
            for fractions in per_scheme.values():
                assert sum(fractions.values()) == pytest.approx(1.0)
        assert "busy" in result.render()

    def test_traffic_rows_cover_apps_and_schemes(self, ctx):
        from repro.analysis.experiments import TRAFFIC_SCHEMES, run_traffic

        result = run_traffic(ctx)
        assert len(result.rows) == 7 * len(TRAFFIC_SCHEMES)
        assert "remote fetch/task" in result.render()

    def test_scalability_curves_aligned(self, ctx):
        from repro.analysis.experiments import run_scalability

        result = run_scalability(ctx, app="Tree", proc_counts=(2, 4))
        for speedups in result.curves.values():
            assert len(speedups) == 2
            assert all(s > 0 for s in speedups)
        assert "2 procs" in result.render()


class TestCLIRun:
    def test_run_command(self, capsys):
        assert main(["run", "--app", "Tree", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "speedup over sequential" in out
        assert "busy" in out

    def test_run_with_extensions(self, capsys):
        assert main(["run", "--app", "Bdna", "--scale", "0.05",
                     "--hlap", "--orb", "--bank-service", "20",
                     "--machine", "cmp8",
                     "--scheme", "MultiT&MV Eager AMM"]) == 0
        assert "commit/execution" in capsys.readouterr().out

    def test_run_multi_invocation(self, capsys):
        assert main(["run", "--app", "Euler", "--scale", "0.05",
                     "--invocations", "2"]) == 0
        capsys.readouterr()

    def test_list_includes_run(self, capsys):
        main(["list"])
        assert "run" in capsys.readouterr().out.split()
