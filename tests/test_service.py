"""End-to-end tests of the ``repro-tls serve`` HTTP/JSON service.

A real server (``ServiceThread``: the asyncio frontend on a background
loop) backed by a temporary sharded cache directory, spoken to with the
blocking ``ServiceClient`` — the same harness the CI smoke driver uses.
The contracts under test: digest-verified bit-identity with direct
``SweepRunner`` execution, warm lookups served from the memory tier,
single-flight collapse of concurrent identical submissions, streamed
per-cell progress, and structured 4xx errors for every refusal.
"""

import statistics
import threading
import time

import pytest

from repro.analysis.serialization import canonical_result_bytes
from repro.runner import SimJob, SweepRunner, WorkloadSpec
from repro.core.config import NUMA_16
from repro.core.taxonomy import MULTI_T_MV_LAZY, SINGLE_T_EAGER
from repro.service import (
    MAX_SWEEP_CELLS,
    ServiceClient,
    ServiceClientError,
    ServiceError,
    ServiceThread,
    SimulationService,
    job_from_request,
    jobs_from_sweep_request,
)

SCALE = 0.1
APP = "Euler"


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One live frontend shared by the module's tests."""
    service = SimulationService(
        cache_dir=tmp_path_factory.mktemp("service-cache"), jobs=2)
    thread = ServiceThread(service).start()
    yield thread
    thread.stop()


@pytest.fixture()
def client(server):
    c = ServiceClient(server.base_url)
    yield c
    c.close()


def _job_request(seed=0, scheme="MultiT&MV Lazy AMM"):
    return {"app": APP, "machine": "numa16", "scheme": scheme,
            "seed": seed, "scale": SCALE}


def _direct_result(seed=0, scheme=MULTI_T_MV_LAZY):
    job = SimJob(machine=NUMA_16,
                 workload=WorkloadSpec(APP, seed=seed, scale=SCALE),
                 scheme=scheme)
    return SweepRunner(jobs=1, cache=None).run(job)


# ----------------------------------------------------------------------
# Basic liveness and the job path
# ----------------------------------------------------------------------
def test_healthz(client):
    assert client.health()["status"] == "ok"


def test_job_round_trip_is_bit_identical_to_a_direct_run(client):
    envelope = client.submit_job(_job_request())
    assert set(envelope) >= {"key", "source", "digest", "result"}
    result = ServiceClient.result_from_envelope(envelope)
    direct = _direct_result()
    assert canonical_result_bytes(result) == canonical_result_bytes(direct)


def test_first_submission_computes_then_serves_warm(client):
    request = _job_request(seed=101)
    first = client.submit_job(request)
    assert first["source"] == "computed"
    again = client.submit_job(request)
    assert again["source"] == "memory"
    assert again["digest"] == first["digest"]
    fetched = client.get_job(first["key"])
    assert fetched["source"] == "memory"
    assert fetched["digest"] == first["digest"]


def test_sequential_baseline_over_the_wire(client):
    from repro.analysis.serialization import sequential_result_to_dict

    envelope = client.submit_job({"app": APP, "scheme": None,
                                  "scale": SCALE})
    result = ServiceClient.result_from_envelope(envelope)
    assert result.total_cycles > 0
    direct = _direct_result(scheme=None)
    # Sequential results have no canonical-bytes form; their full
    # serialization (which carries no host-measured field) is the
    # equality.
    assert (sequential_result_to_dict(result)
            == sequential_result_to_dict(direct))


def test_digest_mismatch_is_detected():
    envelope = {"key": "k", "digest": "0" * 64,
                "result": {"kind": "sequential", "app": "X",
                           "total_cycles": 1}}
    with pytest.raises(ServiceClientError, match="digest"):
        ServiceClient.result_from_envelope(envelope)


def test_warm_lookup_is_fast(client):
    key = client.submit_job(_job_request())["key"]
    client.get_job(key)  # ensure the connection + memory tier are warm
    samples = []
    for _ in range(30):
        start = time.perf_counter()
        envelope = client.get_job(key)
        samples.append(time.perf_counter() - start)
        assert envelope["source"] == "memory"
    median = statistics.median(samples)
    # The acceptance target is < 1 ms on an idle host; CI boxes are
    # noisy, so the test gate is an order of magnitude looser. The
    # serve-smoke driver reports the honest number.
    assert median < 0.05, f"warm GET median {median * 1e3:.2f} ms"


# ----------------------------------------------------------------------
# Sweeps: streaming, status, identity
# ----------------------------------------------------------------------
def test_sweep_streams_progress_and_lands_every_cell(client):
    sweep = client.submit_sweep({
        "apps": [APP],
        "schemes": ["MultiT&MV Lazy AMM", "SingleT Eager AMM"],
        "seed": 7, "scale": SCALE,
    })
    assert sweep["_status"] == 202
    assert sweep["total"] == 2 and len(sweep["keys"]) == 2
    events = list(client.stream_events(sweep["sweep_id"]))
    assert events[-1]["event"] == "end"
    assert events[-1]["status"] == "done"
    results = [e for e in events if e["event"] == "result"]
    assert {e["key"] for e in results} == set(sweep["keys"])
    assert [e["done"] for e in results] == [1, 2]
    assert all(e["total"] == 2 for e in results)

    status = client.sweep_status(sweep["sweep_id"])
    assert status["status"] == "done" and status["done"] == 2

    # Every cell is fetchable, digest-verified, and bit-identical to a
    # direct runner execution of the same job.
    for key, scheme in zip(sweep["keys"],
                           (MULTI_T_MV_LAZY, SINGLE_T_EAGER)):
        result = ServiceClient.result_from_envelope(client.get_job(key))
        direct = _direct_result(seed=7, scheme=scheme)
        assert (canonical_result_bytes(result)
                == canonical_result_bytes(direct))


def test_late_subscriber_replays_the_full_history(client):
    sweep = client.submit_sweep({"apps": [APP],
                                 "schemes": ["MultiT&MV Lazy AMM"],
                                 "seed": 8, "scale": SCALE})
    # Wait for completion via one stream, then subscribe again: the
    # second subscriber must still see every event from the beginning.
    first = list(client.stream_events(sweep["sweep_id"]))
    second = list(client.stream_events(sweep["sweep_id"]))
    assert second == first
    assert second[-1]["event"] == "end"


def test_concurrent_identical_sweeps_compute_each_cell_once(server, client):
    body = {"apps": [APP],
            "schemes": ["MultiT&MV Lazy AMM", "SingleT Eager AMM"],
            "seed": 909, "scale": SCALE}
    before = client.cache_stats()["shared"]["stores"]

    outcomes = []

    def submit_and_drain():
        c = ServiceClient(server.base_url)
        try:
            sweep = c.submit_sweep(body)
            events = list(c.stream_events(sweep["sweep_id"]))
            outcomes.append((sweep, events))
        finally:
            c.close()

    threads = [threading.Thread(target=submit_and_drain) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(outcomes) == 2
    assert all(events[-1]["status"] == "done" for _, events in outcomes)
    after = client.cache_stats()["shared"]["stores"]
    # Two identical 2-cell sweeps → exactly 2 stores: the second sweep
    # joined flights or replayed tiers, never recomputed.
    assert after - before == 2


# ----------------------------------------------------------------------
# Refusals: structured errors on every bad input
# ----------------------------------------------------------------------
def _refused(call, *args):
    with pytest.raises(ServiceClientError) as info:
        call(*args)
    return info.value


def test_unknown_app_is_a_structured_400(client):
    error = _refused(client.submit_job, {"app": "NotAnApp"})
    assert (error.status, error.code) == (400, "unknown_app")


def test_unknown_machine_and_scheme_are_refused(client):
    error = _refused(client.submit_job,
                     {"app": APP, "machine": "vax780"})
    assert (error.status, error.code) == (400, "unknown_machine")
    error = _refused(client.submit_job,
                     {"app": APP, "scheme": "MadeUp Scheme"})
    assert (error.status, error.code) == (400, "unknown_scheme")


def test_traced_jobs_are_refused_as_uncacheable(client):
    error = _refused(client.submit_job, {"app": APP, "traced": True})
    assert (error.status, error.code) == (400, "uncacheable")


def test_malformed_json_body_is_a_structured_400(client):
    conn = client._connection()
    conn.request("POST", "/v1/jobs", body=b"{not json",
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    raw = response.read()
    client.close()  # the server closes errored connections
    assert response.status == 400
    import json
    assert json.loads(raw)["error"]["code"] == "bad_json"


def test_unknown_key_and_sweep_are_404(client):
    error = _refused(client.get_job, "f" * 64)
    assert (error.status, error.code) == (404, "unknown_key")
    error = _refused(client.sweep_status, "s999999")
    assert (error.status, error.code) == (404, "unknown_sweep")
    error = _refused(client._request, "GET", "/v1/nothing/here")
    assert (error.status, error.code) == (404, "not_found")


def test_wrong_method_is_405(client):
    error = _refused(client._request, "GET", "/v1/jobs")
    assert (error.status, error.code) == (405, "method_not_allowed")
    error = _refused(client._request, "POST", "/healthz", {})
    assert (error.status, error.code) == (405, "method_not_allowed")


def test_cache_stats_shape(client):
    stats = client.cache_stats()
    assert set(stats) >= {"engine_version", "memory", "shared",
                          "singleflight", "service", "sweeps"}
    assert stats["shared"]["backend"].startswith("directory:")
    assert stats["memory"]["entries"] >= 1
    assert stats["service"]["jobs.submitted"] >= 1


# ----------------------------------------------------------------------
# Hardening: hostile keys, hostile framing, bounded state
# ----------------------------------------------------------------------
def test_traversal_shaped_keys_are_refused(client):
    # Anything that is not a 64-hex digest — path components included —
    # must 404 before reaching a cache tier, not address the filesystem.
    for key in ("../../../etc/passwd", "/etc/hostname", "..",
                "deadbeef", "F" * 64, "f" * 63, "f" * 65):
        error = _refused(client._request, "GET", f"/v1/jobs/{key}")
        assert (error.status, error.code) == (404, "unknown_key"), key


def _raw_exchange(server, payload: bytes) -> bytes:
    import socket

    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=10) as sock:
        sock.sendall(payload)
        sock.settimeout(10)
        chunks = []
        while True:
            data = sock.recv(4096)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


def test_negative_content_length_is_a_structured_400(server):
    raw = _raw_exchange(
        server,
        b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: -1\r\n\r\n")
    assert raw.startswith(b"HTTP/1.1 400 ")
    assert b'"bad_request"' in raw


def test_silent_connection_is_dropped_after_timeout(server, monkeypatch):
    from repro.service import http as http_module

    monkeypatch.setattr(http_module, "KEEPALIVE_TIMEOUT", 0.2)
    import socket

    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=10) as sock:
        sock.settimeout(5)
        # Send nothing: the server must close the connection rather
        # than pin a handler task open forever.
        assert sock.recv(4096) == b""


def test_non_get_on_events_is_405(client):
    error = _refused(client._request, "POST", "/v1/sweeps/s000001/events",
                     {})
    assert (error.status, error.code) == (405, "method_not_allowed")
    error = _refused(client._request, "DELETE", "/v1/sweeps/zzz/events")
    assert (error.status, error.code) == (405, "method_not_allowed")


def test_digest_memo_is_a_bounded_lru(monkeypatch):
    from repro.service import app as app_module

    monkeypatch.setattr(app_module, "MAX_DIGEST_MEMO_ENTRIES", 8)
    service = SimulationService(use_disk=False)
    try:
        raw = b'{"kind":"sequential","app":"X","total_cycles":1}'
        digests = {service.digest_for(f"{i:064x}", raw)
                   for i in range(32)}
        assert len(service._digests) <= 8
        # Evicted keys simply re-digest to the same value.
        assert digests == {service.digest_for("0" * 64, raw)}
    finally:
        service.close()


def test_finished_sweeps_are_pruned_but_running_ones_kept(monkeypatch):
    from repro.service import app as app_module
    from repro.service.app import SweepState

    monkeypatch.setattr(app_module, "MAX_FINISHED_SWEEPS", 4)
    service = SimulationService(use_disk=False)
    try:
        for i in range(10):
            sweep_id = f"s{i:06d}"
            service._sweeps[sweep_id] = SweepState(
                sweep_id=sweep_id, keys=[], descriptions=[], total=0,
                status="done")
        service._sweeps["running"] = SweepState(
            sweep_id="running", keys=[], descriptions=[], total=1)
        service._prune_finished_sweeps()
        finished = [s for s in service._sweeps.values() if s.finished]
        assert len(finished) == 4
        # Oldest finished dropped, newest kept, running untouched.
        assert "s000000" not in service._sweeps
        assert "s000009" in service._sweeps
        assert "running" in service._sweeps
    finally:
        service.close()


# ----------------------------------------------------------------------
# Request validation (no server needed)
# ----------------------------------------------------------------------
def test_job_request_defaults():
    job = job_from_request({"app": APP})
    assert job.machine is NUMA_16
    # Scheme omitted (or null) means the sequential baseline.
    assert job.scheme is None
    job = job_from_request({"app": APP, "scheme": "MultiT&MV Lazy AMM"})
    assert job.scheme is MULTI_T_MV_LAZY


def test_sweep_request_grid_shape_and_bounds():
    jobs = jobs_from_sweep_request({
        "apps": [APP], "schemes": ["MultiT&MV Lazy AMM", None],
        "scale": SCALE,
    })
    assert len(jobs) == 2
    assert {j.scheme for j in jobs} == {MULTI_T_MV_LAZY, None}

    with pytest.raises(ServiceError) as info:
        jobs_from_sweep_request({"machines": ["numa16"] * 100,
                                 "scale": SCALE})
    assert info.value.code == "grid_too_large"
    assert 100 * 8 * 7 > MAX_SWEEP_CELLS  # the arithmetic the test rides

    with pytest.raises(ServiceError) as info:
        jobs_from_sweep_request({"machine": "numa16",
                                 "machines": ["cmp8"]})
    assert info.value.code == "bad_field"


def test_field_bounds_are_enforced():
    for bad in ({"app": APP, "scale": 0.0},
                {"app": APP, "scale": 1e9},
                {"app": APP, "seed": -1},
                {"app": APP, "seed": "zero"},
                {"app": APP, "collect_metrics": "yes"},
                {"app": APP, "violation_granularity": "page"},
                "not an object"):
        with pytest.raises(ServiceError) as info:
            job_from_request(bad)
        assert info.value.status == 400
