"""Unit tests for machine configuration and latency models."""

import pytest

from repro.core.config import (
    CMP_8,
    CacheGeometry,
    CostModel,
    LINE_BYTES,
    MACHINES,
    MachineConfig,
    NUMA_16,
    NUMA_16_BIG_L2,
    WORDS_PER_LINE,
    scaled_machine,
)
from repro.errors import ConfigurationError


class TestCacheGeometry:
    def test_paper_l2(self):
        geometry = CacheGeometry(size_bytes=512 * 1024, assoc=4)
        assert geometry.n_sets == 2048
        assert geometry.n_lines == 8192

    def test_sets_power_of_two_enforced(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            CacheGeometry(size_bytes=3 * 64 * 4, assoc=4)

    def test_size_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=1000, assoc=2)

    def test_positive_enforced(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=0, assoc=1)
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=1024, assoc=-1)


class TestCostModel:
    def test_ipc_conversion(self):
        costs = CostModel(ipc=2.0)
        assert costs.cycles_for_instructions(1000) == 500

    def test_bad_ipc(self):
        with pytest.raises(ConfigurationError):
            CostModel(ipc=0)


class TestNUMAPreset:
    def test_paper_latencies(self):
        assert NUMA_16.lat_l1 == 2
        assert NUMA_16.lat_l2 == 12
        assert NUMA_16.lat_memory_by_hops[0] == 75
        assert NUMA_16.lat_memory_by_hops[2] == 208
        assert NUMA_16.lat_memory_by_hops[3] == 291

    def test_geometry(self):
        assert NUMA_16.n_procs == 16
        assert NUMA_16.l1.size_bytes == 32 * 1024 and NUMA_16.l1.assoc == 2
        assert NUMA_16.l2.size_bytes == 512 * 1024 and NUMA_16.l2.assoc == 4

    def test_mesh_hops(self):
        # Node 0 is at (0,0); node 5 at (1,1): two hops on the 4x4 mesh.
        assert NUMA_16.hops(0, 0) == 0
        assert NUMA_16.hops(0, 1) == 1
        assert NUMA_16.hops(0, 5) == 2
        # Distances beyond the latency table cap at its maximum.
        assert NUMA_16.hops(0, 15) == NUMA_16.max_hops == 3

    def test_memory_latency_monotonic_in_hops(self):
        latencies = [NUMA_16.memory_latency(0, n) for n in (0, 1, 5, 15)]
        assert latencies == sorted(latencies)
        assert latencies[0] == 75 and latencies[-1] == 291

    def test_home_interleaving_round_robin(self):
        assert NUMA_16.home_node(0) == 0
        assert NUMA_16.home_node(17) == 1


class TestCMPPreset:
    def test_paper_latencies(self):
        assert CMP_8.lat_l1 == 2
        assert CMP_8.lat_l2 == 8
        assert CMP_8.remote_cache_latency(0, 1) == 18
        assert CMP_8.lat_l3 == 38
        assert CMP_8.memory_latency(0, 5) == 102

    def test_crossbar_equidistant(self):
        distances = {CMP_8.hops(0, other) for other in range(1, 8)}
        assert distances == {1}

    def test_l3_geometry(self):
        assert CMP_8.l3 is not None
        assert CMP_8.l3.size_bytes == 16 * 1024 * 1024


class TestBigL2:
    def test_lazy_l2_geometry(self):
        assert NUMA_16_BIG_L2.l2.size_bytes == 4 * 1024 * 1024
        assert NUMA_16_BIG_L2.l2.assoc == 16
        # Everything else matches the base NUMA machine.
        assert NUMA_16_BIG_L2.l1 == NUMA_16.l1
        assert NUMA_16_BIG_L2.n_procs == NUMA_16.n_procs


class TestScaledMachine:
    def test_shrink(self):
        machine = scaled_machine(NUMA_16, 4)
        assert machine.n_procs == 4
        assert machine.mesh_side == 2
        assert machine.hops(0, 3) == 2

    def test_grow(self):
        machine = scaled_machine(NUMA_16, 25)
        assert machine.mesh_side == 5

    def test_crossbar_stays_crossbar(self):
        machine = scaled_machine(CMP_8, 4)
        assert machine.mesh_side is None
        assert machine.hops(0, 3) == 1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            scaled_machine(NUMA_16, 0)

    def test_grow_extends_latency_tables_to_new_diameter(self):
        # A 6x6 mesh has diameter 10; every hop distance must resolve to
        # a real (extrapolated) latency instead of silently folding onto
        # the base table's 3-hop entry.
        machine = scaled_machine(NUMA_16, 36)
        assert machine.mesh_side == 6
        assert machine.max_hops == 10
        # Linear extrapolation continues the base table's last per-hop
        # increment (291 - 208 = 83 cycles/hop).
        assert machine.lat_memory_by_hops[4] == 291 + 83
        assert machine.lat_memory_by_hops[10] == 291 + 7 * 83
        # Corner-to-corner now uses the true distance, not the cap.
        assert machine.hops(0, 35) == 10
        assert machine.memory_latency(0, 35) == 291 + 7 * 83

    def test_non_power_of_two_count_is_consistent(self):
        # 27 processors -> 6x6 mesh (partially filled); the diameter is
        # computed from the real node placement and every pair resolves.
        machine = scaled_machine(NUMA_16, 27)
        assert machine.mesh_side == 6
        for a in range(machine.n_procs):
            for b in range(machine.n_procs):
                assert machine.memory_latency(a, b) > 0

    def test_gap_in_base_table_rejected(self):
        from dataclasses import replace

        gappy = replace(NUMA_16, lat_memory_by_hops={0: 75, 1: 142, 3: 291})
        with pytest.raises(ConfigurationError, match="gaps"):
            scaled_machine(gappy, 36)

    def test_single_entry_table_cannot_extrapolate(self):
        from dataclasses import replace

        local_only = replace(NUMA_16, lat_memory_by_hops={0: 75},
                             lat_remote_cache_by_hops={0: 40})
        with pytest.raises(ConfigurationError, match="extrapolate"):
            scaled_machine(local_only, 36)

    def test_shrink_preserves_base_table_entries(self):
        machine = scaled_machine(NUMA_16, 4)
        assert machine.lat_memory_by_hops == NUMA_16.lat_memory_by_hops


class TestRegistry:
    def test_machines_registry(self):
        assert MACHINES["numa16"] is NUMA_16
        assert MACHINES["cmp8"] is CMP_8
        assert MACHINES["numa16-bigl2"] is NUMA_16_BIG_L2

    def test_constants(self):
        assert LINE_BYTES == 64
        assert WORDS_PER_LINE == 16

    def test_with_costs(self):
        costs = CostModel(token_pass=1)
        machine = NUMA_16.with_costs(costs)
        assert machine.costs.token_pass == 1
        assert NUMA_16.costs.token_pass != 1
