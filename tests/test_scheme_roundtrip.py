"""Every evaluated scheme name survives each representation boundary.

A scheme crosses three boundaries in normal use: CLI / config parsing
(:func:`scheme_from_name`), SimJob content addressing (the name is part
of the cache key), and result serialization (results store the name and
resolve it back on load). A name that drifts in any of them would replay
the wrong scheme's results, so all three are pinned here for all eight
evaluated taxonomy points.
"""

import pytest

from repro.analysis.serialization import result_from_dict, result_to_dict
from repro.core.config import NUMA_16
from repro.core.taxonomy import (
    EVALUATED_SCHEMES,
    MergePolicy,
    Scheme,
    TaskPolicy,
    scheme_from_name,
)
from repro.errors import ConfigurationError
from repro.runner import SimJob, WorkloadSpec, execute_job

SPEC = WorkloadSpec("Apsi", seed=0, scale=0.1)


@pytest.mark.parametrize("scheme", EVALUATED_SCHEMES, ids=lambda s: s.name)
def test_name_parses_back_to_the_same_scheme(scheme):
    assert scheme_from_name(scheme.name) is scheme
    assert scheme_from_name(scheme.name.upper()) is scheme  # CLI is lax


def test_evaluated_scheme_names_are_unique():
    names = [s.name for s in EVALUATED_SCHEMES]
    assert len(set(names)) == len(names) == 8


def test_shaded_schemes_do_not_parse():
    shaded = [
        Scheme(TaskPolicy.SINGLE_T, MergePolicy.FMM),
        Scheme(TaskPolicy.MULTI_T_SV, MergePolicy.FMM),
    ]
    for scheme in shaded:
        assert scheme.is_shaded
        with pytest.raises(ConfigurationError):
            scheme_from_name(scheme.name)


def test_schemes_get_distinct_cache_keys():
    keys = {
        SimJob(machine=NUMA_16, workload=SPEC, scheme=scheme).cache_key()
        for scheme in EVALUATED_SCHEMES
    }
    assert len(keys) == len(EVALUATED_SCHEMES)


@pytest.mark.parametrize("scheme", EVALUATED_SCHEMES, ids=lambda s: s.name)
def test_result_serialization_round_trips_the_scheme(scheme):
    result = execute_job(
        SimJob(machine=NUMA_16, workload=SPEC, scheme=scheme))
    assert result.scheme is scheme
    payload = result_to_dict(result, full=True)
    assert payload["scheme"] == scheme.name
    restored = result_from_dict(payload)
    assert isinstance(restored.scheme, Scheme)
    assert restored.scheme is scheme


def test_cli_accepts_every_evaluated_scheme_name():
    # Only the parse path: argparse hands --scheme to scheme_from_name
    # before anything runs, so one full CLI run per scheme would test the
    # engine, not the names. Exercise the whole pipe once.
    from repro.analysis.cli import main

    assert main(["run", "--app", "Apsi", "--scale", "0.05",
                 "--scheme", "MultiT&MV FMM.Sw"]) == 0
