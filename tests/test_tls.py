"""Unit tests for tasks, the scheduler, and the commit controller."""

import pytest

from repro.errors import ProtocolError, SimulationError, WorkloadError
from repro.tls.commit import CommitController
from repro.tls.scheduler import TaskScheduler
from repro.tls.task import (
    OP_COMPUTE,
    OP_READ,
    OP_WRITE,
    TaskRun,
    TaskSpec,
    TaskState,
)
from tests.conftest import compute, make_task, read, write


class TestTaskSpec:
    def test_instruction_count(self):
        task = make_task(0, compute(100), read(5), compute(50), write(6))
        assert task.instructions == 150
        assert task.memory_ops == 2

    def test_word_sets(self):
        task = make_task(0, write(5), write(21), read(7))
        assert task.written_words() == {5, 21}
        assert task.read_words() == {7}
        assert task.written_lines() == {0, 1}

    def test_negative_id_rejected(self):
        with pytest.raises(WorkloadError):
            make_task(-1, compute(1))

    def test_bad_op_kind_rejected(self):
        with pytest.raises(WorkloadError):
            TaskSpec(0, ((99, 5),))

    def test_negative_value_rejected(self):
        with pytest.raises(WorkloadError):
            TaskSpec(0, ((OP_COMPUTE, -5),))


class TestTaskRun:
    def test_lifecycle(self):
        run = TaskRun(spec=make_task(3, compute(10), write(5)))
        assert run.state is TaskState.PENDING
        run.begin_attempt(proc_id=1, now=100.0)
        assert run.state is TaskState.RUNNING
        assert run.attempt == 1
        run.record_write(5)
        assert run.words_by_line == {0: {5}}

    def test_squash_resets_attempt_state(self):
        run = TaskRun(spec=make_task(3, write(5)))
        run.begin_attempt(0, 0.0)
        run.record_write(5)
        run.read_words.add(9)
        run.observed_reads[9] = -1
        run.squash()
        assert run.state is TaskState.PENDING
        assert run.squashes == 1
        assert run.words_by_line == {}
        assert run.read_words == set()
        assert run.observed_reads == {}
        run.begin_attempt(2, 50.0)
        assert run.attempt == 2
        assert run.op_index == 0

    def test_timing_properties(self):
        run = TaskRun(spec=make_task(0, compute(1)))
        run.start_time, run.finish_time = 10.0, 25.0
        run.commit_start, run.commit_time = 30.0, 34.0
        assert run.execution_cycles == 15.0
        assert run.commit_cycles == 4.0


class TestScheduler:
    def _runs(self, n: int) -> dict[int, TaskRun]:
        return {i: TaskRun(spec=make_task(i, compute(1))) for i in range(n)}

    def test_claims_in_id_order(self):
        scheduler = TaskScheduler(self._runs(4))
        claimed = [scheduler.claim().task_id for _ in range(4)]
        assert claimed == [0, 1, 2, 3]
        assert scheduler.claim() is None
        assert not scheduler.has_pending()

    def test_release_reclaims_lowest_first(self):
        scheduler = TaskScheduler(self._runs(4))
        for _ in range(4):
            scheduler.claim()
        scheduler.release(2)
        scheduler.release(1)
        assert scheduler.claim().task_id == 1
        assert scheduler.claim().task_id == 2

    def test_release_unclaimed_raises(self):
        scheduler = TaskScheduler(self._runs(2))
        with pytest.raises(SimulationError):
            scheduler.release(0)

    def test_pending_count(self):
        scheduler = TaskScheduler(self._runs(3))
        assert scheduler.pending_count == 3
        scheduler.claim()
        assert scheduler.pending_count == 2


class TestCommitController:
    def test_strict_order(self):
        commit = CommitController(3)
        assert commit.can_commit(0)
        assert not commit.can_commit(1)
        commit.begin_commit(0, now=10.0)
        assert not commit.token_free
        with pytest.raises(ProtocolError):
            commit.begin_commit(1, now=10.0)
        commit.finish_commit(0, start=10.0, end=20.0)
        assert commit.next_to_commit == 1
        assert commit.can_commit(1)

    def test_out_of_order_begin_rejected(self):
        commit = CommitController(3)
        with pytest.raises(ProtocolError):
            commit.begin_commit(2, now=0.0)

    def test_finish_wrong_task_rejected(self):
        commit = CommitController(3)
        commit.begin_commit(0, now=0.0)
        with pytest.raises(ProtocolError):
            commit.finish_commit(1, start=0.0, end=1.0)

    def test_wavefront_and_token_hold(self):
        commit = CommitController(2)
        commit.begin_commit(0, now=0.0)
        commit.finish_commit(0, start=0.0, end=5.0)
        commit.begin_commit(1, now=7.0)
        commit.finish_commit(1, start=7.0, end=9.0)
        assert commit.all_committed
        assert commit.stats.token_hold_cycles == 7.0
        assert commit.stats.wavefront == [(0, 0.0, 5.0), (1, 7.0, 9.0)]
