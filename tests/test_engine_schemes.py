"""Per-scheme engine behaviour: the mechanisms of Section 3.3.

Each test builds a micro-scenario in which exactly one mechanism fires and
asserts both its presence under the scheme that has it and its absence under
the scheme that does not.
"""

import pytest

from repro.core.config import CacheGeometry, scaled_machine, NUMA_16
from repro.core.engine import Simulation, simulate
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_FMM_SW,
    MULTI_T_MV_LAZY,
    MULTI_T_SV_EAGER,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
)
from repro.processor.processor import CycleCategory
from repro.workloads.base import PRIV_BASE
from tests.conftest import WORD_A, compute, make_task, make_workload, read, write


def imbalanced_workload():
    """T0 long; T1-T3 short. Two processors."""
    tasks = [make_task(0, compute(80_000))]
    for tid in (1, 2, 3):
        tasks.append(make_task(tid, compute(2_000)))
    return make_workload("imbalanced", *tasks)


def priv_workload():
    """Figure 5's pattern: T0 long; T1-T3 short, each writing word X."""
    x = PRIV_BASE
    tasks = [make_task(0, compute(80_000))]
    for tid in (1, 2, 3):
        tasks.append(make_task(
            tid, compute(500), write(x), compute(4_000), read(x)))
    return make_workload("priv", *tasks)


class TestSingleTStall:
    def test_singlet_parks_after_speculative_finish(self, tiny_machine):
        result = simulate(tiny_machine, SINGLE_T_EAGER, imbalanced_workload())
        # P1 finishes T1 early and must hold it speculative until T0
        # commits, then T2, then T3: large commit-stall time.
        stall = result.cycles_by_category[CycleCategory.COMMIT_STALL]
        assert stall > 30_000

    def test_multit_keeps_executing(self, tiny_machine):
        result = simulate(tiny_machine, MULTI_T_MV_EAGER,
                          imbalanced_workload())
        assert result.cycles_by_category[CycleCategory.COMMIT_STALL] == 0
        singlet = simulate(tiny_machine, SINGLE_T_EAGER,
                           imbalanced_workload())
        assert result.total_cycles < singlet.total_cycles

    def test_multit_runs_tasks_on_fewer_procs(self, tiny_machine):
        """Under MultiT, P1 executes T1, T2 and T3 while P0 runs T0."""
        sim = Simulation(tiny_machine, MULTI_T_MV_EAGER,
                         imbalanced_workload())
        result = sim.run()
        procs = {t.task_id: t.proc_id for t in result.task_timings}
        assert procs[0] == 0
        assert procs[1] == procs[2] == procs[3] == 1


class TestMultiTSVStall:
    def test_sv_stalls_on_second_local_version(self, tiny_machine):
        result = simulate(tiny_machine, MULTI_T_SV_EAGER, priv_workload())
        assert result.cycles_by_category[CycleCategory.SV_STALL] > 10_000

    def test_mv_never_sv_stalls(self, tiny_machine):
        result = simulate(tiny_machine, MULTI_T_MV_EAGER, priv_workload())
        assert result.cycles_by_category[CycleCategory.SV_STALL] == 0

    def test_ordering_singlet_sv_mv(self, tiny_machine):
        """Figure 5: MultiT&MV < = MultiT&SV <= SingleT on this pattern."""
        singlet = simulate(tiny_machine, SINGLE_T_EAGER, priv_workload())
        sv = simulate(tiny_machine, MULTI_T_SV_EAGER, priv_workload())
        mv = simulate(tiny_machine, MULTI_T_MV_EAGER, priv_workload())
        assert mv.total_cycles < sv.total_cycles
        assert mv.total_cycles < singlet.total_cycles

    def test_sv_resumes_on_blocker_commit(self, tiny_machine):
        """The stalled write completes and the final image is correct."""
        workload = priv_workload()
        result = simulate(tiny_machine, MULTI_T_SV_EAGER, workload)
        assert result.memory_image == workload.sequential_image()
        assert result.violation_events == 0

    def test_clean_remote_copies_do_not_block(self, tiny_machine):
        """SV blocks on locally-created versions, not on fetched copies:
        T1 only *reads* T0's word before T2 writes it on the same proc."""
        x = PRIV_BASE
        workload = make_workload(
            "copies",
            make_task(0, write(x), compute(40_000)),
            make_task(1, compute(2_000), read(x), compute(1_000)),
            make_task(2, compute(4_000), write(x + 1), compute(500)),
        )
        result = simulate(tiny_machine, MULTI_T_SV_EAGER, workload)
        # T1's clean copy of T0's version shares the line with T2's write
        # target, but a clean copy must not trigger the SV stall.
        assert result.cycles_by_category[CycleCategory.SV_STALL] == 0


class TestEagerVsLazy:
    def footprint_workload(self, n_tasks=6, lines=20):
        tasks = []
        for tid in range(n_tasks):
            ops = [compute(2_000)]
            base = PRIV_BASE + (tid * lines + 64) * 16
            for j in range(lines):
                ops.append(write(base + j * 16))
                ops.append(compute(100))
            tasks.append(make_task(tid, *ops))
        return make_workload("footprint", *tasks)

    def test_lazy_shrinks_token_hold(self, quad_machine):
        workload = self.footprint_workload()
        eager = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        lazy = simulate(quad_machine, MULTI_T_MV_LAZY, workload)
        assert lazy.token_hold_cycles < eager.token_hold_cycles / 3

    def test_lazy_commit_duration_is_token_pass(self, quad_machine):
        workload = self.footprint_workload()
        lazy = simulate(quad_machine, MULTI_T_MV_LAZY, workload)
        token = quad_machine.costs.token_pass
        for _tid, start, end in lazy.commit_wavefront:
            assert end - start == pytest.approx(token)

    def test_lazy_faster_when_commit_bound(self, quad_machine):
        workload = self.footprint_workload()
        eager = simulate(quad_machine, SINGLE_T_EAGER, workload)
        lazy = simulate(quad_machine, SINGLE_T_LAZY, workload)
        assert lazy.total_cycles < eager.total_cycles

    def test_lazy_final_merge_extends_past_last_commit(self, quad_machine):
        workload = self.footprint_workload()
        lazy = simulate(quad_machine, MULTI_T_MV_LAZY, workload)
        last_commit = max(end for _t, _s, end in lazy.commit_wavefront)
        assert lazy.total_cycles > last_commit

    def test_eager_ends_at_last_commit(self, quad_machine):
        workload = self.footprint_workload()
        eager = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        last_commit = max(end for _t, _s, end in eager.commit_wavefront)
        assert eager.total_cycles == pytest.approx(last_commit)


class TestFMM:
    def multi_version_workload(self):
        """Several tasks all writing the same line (privatization)."""
        x = PRIV_BASE
        tasks = []
        for tid in range(6):
            tasks.append(make_task(
                tid, compute(1_000), write(x), write(x + 1),
                compute(1_000), read(x)))
        return make_workload("versions", *tasks)

    def test_undo_log_populated_and_freed(self, quad_machine):
        workload = self.multi_version_workload()
        sim = Simulation(quad_machine, MULTI_T_MV_FMM, workload)
        result = sim.run()
        assert result.peak_undolog_entries > 0
        # All entries freed at commit.
        assert all(len(p.undolog) == 0 for p in sim.procs)

    def test_amm_does_not_log(self, quad_machine):
        result = simulate(quad_machine, MULTI_T_MV_EAGER,
                          self.multi_version_workload())
        assert result.peak_undolog_entries == 0

    def test_fmm_keeps_one_version_per_line_per_proc(self, quad_machine):
        """After logging, older local versions leave the cache: a processor
        holds at most one (speculative or committed) version of a line."""
        workload = self.multi_version_workload()
        sim = Simulation(quad_machine, MULTI_T_MV_FMM, workload)
        sim.run()
        for proc in sim.procs:
            entries = proc.l2.entries(PRIV_BASE // 16)
            assert len(entries) <= 1

    def test_fmm_sw_adds_busy_cycles(self, quad_machine):
        workload = self.multi_version_workload()
        hw = simulate(quad_machine, MULTI_T_MV_FMM, workload)
        sw = simulate(quad_machine, MULTI_T_MV_FMM_SW, workload)
        assert sw.busy_cycles > hw.busy_cycles
        assert sw.total_cycles >= hw.total_cycles

    def test_fmm_image_correct_with_displacements(self, fast_costs):
        """Uncommitted versions reach memory (MTID) yet the image is right."""
        machine = scaled_machine(NUMA_16, 2).with_costs(fast_costs)
        # Shrink L2 to force displacement of speculative lines to memory.
        machine = machine.with_l2(CacheGeometry(size_bytes=1024, assoc=2))
        tasks = []
        for tid in range(8):
            ops = [compute(500)]
            for j in range(12):
                ops.append(write(PRIV_BASE + j * 16 + tid))
            tasks.append(make_task(tid, *ops))
        workload = make_workload("spill", *tasks)
        result = simulate(machine, MULTI_T_MV_FMM, workload)
        assert result.memory_image == workload.sequential_image()


class TestOverflowArea:
    def small_l2_machine(self, fast_costs):
        machine = scaled_machine(NUMA_16, 2).with_costs(fast_costs)
        return machine.with_l2(CacheGeometry(size_bytes=1024, assoc=2))

    def spill_workload(self):
        tasks = []
        for tid in range(6):
            ops = [compute(500)]
            for j in range(20):
                ops.append(write(PRIV_BASE + j * 16 + tid))
            ops.append(compute(20_000))
            tasks.append(make_task(tid, *ops))
        return make_workload("overflow", *tasks)

    def test_amm_spills_speculative_lines(self, fast_costs):
        machine = self.small_l2_machine(fast_costs)
        result = simulate(machine, MULTI_T_MV_EAGER, self.spill_workload())
        assert result.peak_overflow_lines > 0
        assert result.memory_image == self.spill_workload().sequential_image()

    def test_fmm_never_uses_overflow(self, fast_costs):
        machine = self.small_l2_machine(fast_costs)
        result = simulate(machine, MULTI_T_MV_FMM, self.spill_workload())
        assert result.peak_overflow_lines == 0
