"""Unit tests for the processor model's parking and cycle accounting."""

import pytest

from repro.core.config import NUMA_16
from repro.errors import SimulationError
from repro.processor.processor import (
    CycleAccount,
    CycleCategory,
    Processor,
    STALL_CATEGORIES,
)
from repro.tls.task import TaskRun, TaskState
from tests.conftest import compute, make_task


class TestCycleAccount:
    def test_busy_vs_stall_split(self):
        account = CycleAccount()
        account.add(CycleCategory.BUSY, 100)
        account.add(CycleCategory.MEMORY, 30)
        account.add(CycleCategory.IDLE, 20)
        assert account.busy() == 100
        assert account.stall() == 50
        assert account.total() == 150

    def test_negative_charge_rejected(self):
        account = CycleAccount()
        with pytest.raises(SimulationError):
            account.add(CycleCategory.BUSY, -1)

    def test_stall_categories_cover_everything_but_busy(self):
        assert set(STALL_CATEGORIES) == set(CycleCategory) - {
            CycleCategory.BUSY
        }


class TestParking:
    def test_park_unpark_charges_category(self):
        proc = Processor(0, NUMA_16)
        proc.park(10.0, CycleCategory.SV_STALL, sv_blocker=3)
        assert proc.parked
        assert proc.sv_blocker == 3
        proc.unpark(25.0)
        assert not proc.parked
        assert proc.account.by_category[CycleCategory.SV_STALL] == 15.0
        assert proc.sv_blocker is None

    def test_double_park_rejected(self):
        proc = Processor(0, NUMA_16)
        proc.park(0.0, CycleCategory.IDLE)
        with pytest.raises(SimulationError):
            proc.park(1.0, CycleCategory.MEMORY)

    def test_unpark_without_park_rejected(self):
        proc = Processor(0, NUMA_16)
        with pytest.raises(SimulationError):
            proc.unpark(5.0)


class TestResidency:
    def test_speculative_resident_excludes_committed(self):
        proc = Processor(0, NUMA_16)
        running = TaskRun(spec=make_task(1, compute(1)))
        running.state = TaskState.RUNNING
        committed = TaskRun(spec=make_task(0, compute(1)))
        committed.state = TaskState.COMMITTED
        proc.resident = {0: committed, 1: running}
        assert proc.speculative_resident() == [running]

    def test_drop_resident_tolerates_missing(self):
        proc = Processor(0, NUMA_16)
        proc.drop_resident(42)  # no error

    def test_caches_named_after_processor(self):
        proc = Processor(3, NUMA_16)
        assert "P3" in proc.l1.name and "P3" in proc.l2.name
        assert proc.overflow.proc_id == 3
        assert proc.undolog.proc_id == 3
