"""Property tests for the calendar-bucket event queue.

The engine's ordering contract: :class:`repro.core.events.BucketQueue`
must return items in exactly the order ``heapq`` would — ascending
``(when, seq)`` — for any interleaving of pushes and pops, including
same-time events, same-bucket collisions, and pushes issued while the
queue is partially drained (the engine pushes from inside event
callbacks). Any divergence would silently reorder simulated events and
break bit-identity.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import DEFAULT_BUCKET_WIDTH, BucketQueue

#: Times spanning many buckets, bucket boundaries, sub-bucket clusters,
#: and exact collisions at the default width of 64.0.
TIMES = st.one_of(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False,
              allow_infinity=False),
    st.sampled_from([0.0, 63.999, 64.0, 64.001, 128.0, 128.0, 500.5]),
)

#: A script is a sequence of push times interleaved with pops (None).
SCRIPTS = st.lists(st.one_of(TIMES, st.none()), min_size=0, max_size=200)


def _run_script(script, width=DEFAULT_BUCKET_WIDTH):
    """Drive a BucketQueue and a heapq list in lock-step."""
    queue = BucketQueue(width)
    heap = []
    seq = 0
    popped = []
    for step in script:
        if step is None:
            if not heap:
                continue
            expected = heapq.heappop(heap)
            got = queue.pop()
            assert got == expected
            popped.append(got)
        else:
            seq += 1
            item = (step, seq, None, ())
            queue.push(item)
            heapq.heappush(heap, item)
        assert len(queue) == len(heap)
        assert bool(queue) == bool(heap)
        if heap:
            assert queue.peek_time() == heap[0][0]
    # Drain the remainder: full order must match.
    while heap:
        assert queue.pop() == heapq.heappop(heap)
    assert not queue
    return popped


@settings(max_examples=200, deadline=None)
@given(SCRIPTS)
def test_bucket_queue_matches_heapq_order(script):
    _run_script(script)


@settings(max_examples=50, deadline=None)
@given(SCRIPTS, st.sampled_from([0.5, 1.0, 64.0, 1e6]))
def test_bucket_queue_matches_heapq_for_any_width(script, width):
    _run_script(script, width=width)


def test_same_time_events_pop_in_push_order():
    queue = BucketQueue()
    items = [(10.0, seq, None, ()) for seq in range(5)]
    for item in reversed(items):
        queue.push(item)
    assert [queue.pop() for _ in items] == items


def test_push_during_drain_lands_in_already_popped_bucket_region():
    # The engine may schedule an event into the *current* bucket while
    # draining it; the queue must still serve strict (when, seq) order.
    queue = BucketQueue(64.0)
    queue.push((10.0, 1, None, ()))
    queue.push((70.0, 2, None, ()))
    assert queue.pop() == (10.0, 1, None, ())
    queue.push((20.0, 3, None, ()))  # into the now-empty first bucket
    assert queue.pop() == (20.0, 3, None, ())
    assert queue.pop() == (70.0, 2, None, ())
    assert len(queue) == 0


def test_empty_queue_raises_and_width_validated():
    queue = BucketQueue()
    with pytest.raises(IndexError):
        queue.pop()
    with pytest.raises(IndexError):
        queue.peek_time()
    with pytest.raises(ValueError):
        BucketQueue(0.0)
    with pytest.raises(ValueError):
        BucketQueue(-1.0)
