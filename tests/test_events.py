"""Property tests for the calendar-bucket event queue.

The engine's ordering contract: :class:`repro.core.events.BucketQueue`
must return items in exactly the order ``heapq`` would — ascending
``(when, seq)`` — for any interleaving of pushes and pops, including
same-time events, same-bucket collisions, and pushes issued while the
queue is partially drained (the engine pushes from inside event
callbacks). Any divergence would silently reorder simulated events and
break bit-identity.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import DEFAULT_BUCKET_WIDTH, BucketQueue

#: Times spanning many buckets, bucket boundaries, sub-bucket clusters,
#: and exact collisions at the default width of 64.0.
TIMES = st.one_of(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False,
              allow_infinity=False),
    st.sampled_from([0.0, 63.999, 64.0, 64.001, 128.0, 128.0, 500.5]),
)

#: A script is a sequence of push times interleaved with pops (None).
SCRIPTS = st.lists(st.one_of(TIMES, st.none()), min_size=0, max_size=200)


def _run_script(script, width=DEFAULT_BUCKET_WIDTH):
    """Drive a BucketQueue and a heapq list in lock-step."""
    queue = BucketQueue(width)
    heap = []
    seq = 0
    popped = []
    for step in script:
        if step is None:
            if not heap:
                continue
            expected = heapq.heappop(heap)
            got = queue.pop()
            assert got == expected
            popped.append(got)
        else:
            seq += 1
            item = (step, seq, None, ())
            queue.push(item)
            heapq.heappush(heap, item)
        assert len(queue) == len(heap)
        assert bool(queue) == bool(heap)
        if heap:
            assert queue.peek_time() == heap[0][0]
    # Drain the remainder: full order must match.
    while heap:
        assert queue.pop() == heapq.heappop(heap)
    assert not queue
    return popped


@settings(max_examples=200, deadline=None)
@given(SCRIPTS)
def test_bucket_queue_matches_heapq_order(script):
    _run_script(script)


@settings(max_examples=50, deadline=None)
@given(SCRIPTS, st.sampled_from([0.5, 1.0, 64.0, 1e6]))
def test_bucket_queue_matches_heapq_for_any_width(script, width):
    _run_script(script, width=width)


def test_same_time_events_pop_in_push_order():
    queue = BucketQueue()
    items = [(10.0, seq, None, ()) for seq in range(5)]
    for item in reversed(items):
        queue.push(item)
    assert [queue.pop() for _ in items] == items


def test_push_during_drain_lands_in_already_popped_bucket_region():
    # The engine may schedule an event into the *current* bucket while
    # draining it; the queue must still serve strict (when, seq) order.
    queue = BucketQueue(64.0)
    queue.push((10.0, 1, None, ()))
    queue.push((70.0, 2, None, ()))
    assert queue.pop() == (10.0, 1, None, ())
    queue.push((20.0, 3, None, ()))  # into the now-empty first bucket
    assert queue.pop() == (20.0, 3, None, ())
    assert queue.pop() == (70.0, 2, None, ())
    assert len(queue) == 0


def _heapq_batch(heap):
    """Pop from ``heap`` every item sharing the minimum ``when``."""
    when = heap[0][0]
    batch = []
    while heap and heap[0][0] == when:
        batch.append(heapq.heappop(heap))
    return batch


def _run_batch_script(script, width=DEFAULT_BUCKET_WIDTH):
    """Drive pop_batch against repeated heapq pops in lock-step.

    Each batch must equal exactly the run of heap pops sharing the
    minimum time — the engine's batched drain loop (engine-core v3)
    relies on a batch being indistinguishable from calling pop()
    while the head time stays constant.
    """
    queue = BucketQueue(width)
    heap = []
    seq = 0
    for step in script:
        if step is None:
            if not heap:
                with pytest.raises(IndexError):
                    queue.pop_batch()
                continue
            assert queue.pop_batch() == _heapq_batch(heap)
        else:
            seq += 1
            item = (step, seq, None, ())
            queue.push(item)
            heapq.heappush(heap, item)
        assert len(queue) == len(heap)
        assert bool(queue) == bool(heap)
        if heap:
            assert queue.peek_time() == heap[0][0]
    while heap:
        assert queue.pop_batch() == _heapq_batch(heap)
    assert not queue


@settings(max_examples=200, deadline=None)
@given(SCRIPTS)
def test_pop_batch_matches_heapq_runs(script):
    _run_batch_script(script)


@settings(max_examples=50, deadline=None)
@given(SCRIPTS, st.sampled_from([0.5, 1.0, 64.0, 1e6]))
def test_pop_batch_matches_heapq_runs_for_any_width(script, width):
    _run_batch_script(script, width=width)


@settings(max_examples=100, deadline=None)
@given(SCRIPTS, st.lists(st.booleans(), min_size=0, max_size=200))
def test_pop_and_pop_batch_interleave(script, use_batch):
    """Mixing pop() and pop_batch() still serves exact heap order."""
    queue = BucketQueue()
    heap = []
    seq = 0
    batched = iter(use_batch + [True] * len(script))
    for step in script:
        if step is None:
            if not heap:
                continue
            if next(batched):
                assert queue.pop_batch() == _heapq_batch(heap)
            else:
                assert queue.pop() == heapq.heappop(heap)
        else:
            seq += 1
            item = (step, seq, None, ())
            queue.push(item)
            heapq.heappush(heap, item)
    while heap:
        assert queue.pop() == heapq.heappop(heap)
    assert not queue


def test_pop_batch_same_time_events_in_push_order():
    queue = BucketQueue()
    items = [(10.0, seq, None, ()) for seq in range(5)]
    for item in reversed(items):
        queue.push(item)
    assert queue.pop_batch() == items
    assert not queue


def test_push_during_batch_lands_in_next_batch():
    # The engine pushes completion events while walking a batch; even a
    # same-time push must land in the *next* pop_batch call (its seq is
    # higher than every member of the current batch, so overall
    # (when, seq) order is still exact heap order).
    queue = BucketQueue()
    queue.push((10.0, 1, None, ()))
    queue.push((10.0, 2, None, ()))
    batch = queue.pop_batch()
    assert batch == [(10.0, 1, None, ()), (10.0, 2, None, ())]
    queue.push((10.0, 3, None, ()))
    assert queue.pop_batch() == [(10.0, 3, None, ())]


def test_empty_queue_raises_and_width_validated():
    queue = BucketQueue()
    with pytest.raises(IndexError):
        queue.pop()
    with pytest.raises(IndexError):
        queue.pop_batch()
    with pytest.raises(IndexError):
        queue.peek_time()
    with pytest.raises(ValueError):
        BucketQueue(0.0)
    with pytest.raises(ValueError):
        BucketQueue(-1.0)
