"""Golden regression corpus: digests of canonical results.

``tests/golden/digests.json`` stores the SHA-256 of the canonical JSON
serialization (:func:`canonical_result_bytes`, i.e. everything but the
host wall clock) for a small (machine x scheme x app) grid, together
with the :data:`ENGINE_VERSION` that produced it. The test recomputes
the grid and diffs:

* a digest change while ``ENGINE_VERSION`` still matches the stored one
  means the timing model changed without a version bump — stale cached
  results would silently replay as current, so this fails loudly;
* after an intentional engine change, bump ``ENGINE_VERSION`` and run
  ``pytest tests/test_golden.py --update-golden`` to re-baseline.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.analysis.serialization import canonical_result_bytes
from repro.core.config import CMP_8, NUMA_16
from repro.core.engine import ENGINE_VERSION
from repro.core.taxonomy import (
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
    MULTI_T_SV_LAZY,
    SINGLE_T_EAGER,
)
from repro.runner import SimJob, WorkloadSpec, execute_job

GOLDEN_PATH = Path(__file__).parent / "golden" / "digests.json"

#: One corner per taxonomy axis on both machine models, kept small so the
#: whole grid recomputes in seconds.
MACHINES = (NUMA_16, CMP_8)
SCHEMES = (SINGLE_T_EAGER, MULTI_T_SV_LAZY, MULTI_T_MV_LAZY, MULTI_T_MV_FMM)
APPS = ("Euler", "Apsi")
SCALE = 0.1


def _machine_key(machine) -> str:
    # NUMA_16 and CMP_8 have distinct display names; keep keys readable.
    return machine.name


def _compute_digests() -> dict[str, str]:
    digests = {}
    for machine in MACHINES:
        for scheme in SCHEMES:
            for app in APPS:
                job = SimJob(
                    machine=machine,
                    workload=WorkloadSpec(app, seed=0, scale=SCALE),
                    scheme=scheme,
                )
                blob = canonical_result_bytes(execute_job(job))
                key = f"{_machine_key(machine)} | {scheme.name} | {app}"
                digests[key] = hashlib.sha256(blob).hexdigest()
    return digests


def test_golden_digests(update_golden):
    current = _compute_digests()
    if update_golden:
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(
            {"engine_version": ENGINE_VERSION, "digests": current},
            indent=2, sort_keys=True,
        ) + "\n")
        pytest.skip(f"golden digests rewritten at {GOLDEN_PATH}")

    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} is missing; generate it with "
        f"`pytest tests/test_golden.py --update-golden`"
    )
    stored = json.loads(GOLDEN_PATH.read_text())

    if stored["engine_version"] != ENGINE_VERSION:
        pytest.fail(
            f"ENGINE_VERSION is {ENGINE_VERSION!r} but the golden corpus "
            f"was baselined at {stored['engine_version']!r}; re-baseline "
            f"with `pytest tests/test_golden.py --update-golden`"
        )

    assert set(current) == set(stored["digests"]), (
        "golden grid definition changed; re-baseline with --update-golden"
    )
    drifted = sorted(k for k in current if current[k] != stored["digests"][k])
    assert not drifted, (
        f"{len(drifted)} golden digest(s) drifted while ENGINE_VERSION "
        f"stayed {ENGINE_VERSION!r} — cached results of these jobs would "
        f"replay stale timing as current. If the behaviour change is "
        f"intentional, bump ENGINE_VERSION in repro/core/engine.py and run "
        f"`pytest tests/test_golden.py --update-golden`. Drifted: {drifted}"
    )
