"""Tests for violation granularity and protocol traffic accounting."""

import pytest

from repro.core.engine import Simulation, simulate
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)
from repro.errors import ConfigurationError
from repro.workloads.apps import generate_workload
from repro.workloads.base import OUTPUT_BASE
from tests.conftest import compute, make_task, make_workload, read, write


def false_sharing_workload(n_tasks: int = 4):
    """Disjoint words of one shared line, written by different tasks.

    Task 0 runs long and writes its word *late*; the later tasks write and
    re-read their own words early. Word-granularity detection never
    squashes (the words are disjoint); line-granularity detection cannot
    tell task 0's late write apart from a real dependence into the line the
    later tasks already read, so it squashes them — the classic
    false-sharing penalty.
    """
    line_base = OUTPUT_BASE  # word 0 of some line
    tasks = [make_task(
        0,
        compute(40_000),
        write(line_base),            # late write to word 0
        compute(200),
    )]
    for tid in range(1, n_tasks):
        tasks.append(make_task(
            tid,
            compute(400),
            write(line_base + tid),  # own word of the shared line
            compute(1_000),
            read(line_base + tid),   # re-read own word
            compute(12_000),
        ))
    return make_workload("false-sharing", *tasks)


class TestViolationGranularity:
    def test_word_granularity_ignores_false_sharing(self, quad_machine):
        workload = false_sharing_workload()
        result = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        assert result.violation_events == 0

    def test_line_granularity_squashes_false_sharing(self, quad_machine):
        workload = false_sharing_workload()
        result = Simulation(quad_machine, MULTI_T_MV_EAGER, workload,
                            violation_granularity="line").run()
        assert result.violation_events >= 1
        assert result.squashed_executions >= 1
        # Semantics are still correct, just slower.
        assert result.memory_image == workload.sequential_image()

    def test_line_granularity_costs_time(self, quad_machine):
        workload = false_sharing_workload()
        word = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        line = Simulation(quad_machine, MULTI_T_MV_EAGER, workload,
                          violation_granularity="line").run()
        assert line.total_cycles > word.total_cycles

    def test_real_violations_detected_under_both(self, tiny_machine):
        from repro.workloads.base import DEP_BASE

        workload = make_workload(
            "dep",
            make_task(0, compute(40_000), write(DEP_BASE)),
            make_task(1, compute(200), read(DEP_BASE), compute(20_000)),
        )
        for granularity in ("word", "line"):
            result = Simulation(tiny_machine, MULTI_T_MV_EAGER, workload,
                                violation_granularity=granularity).run()
            assert result.violation_events >= 1

    def test_invalid_granularity_rejected(self, tiny_machine):
        workload = false_sharing_workload(2)
        with pytest.raises(ConfigurationError, match="granularity"):
            Simulation(tiny_machine, MULTI_T_MV_EAGER, workload,
                       violation_granularity="page")


class TestTrafficAccounting:
    def test_eager_writes_back_every_dirty_line(self, quad_machine):
        workload = generate_workload("Bdna", scale=0.1)
        result = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        # Every task's footprint is written back at commit (plus the final
        # zero-cost flush finds nothing new for committed data).
        expected_lines = sum(len(t.written_lines()) for t in workload.tasks)
        assert result.traffic.line_writebacks >= expected_lines

    def test_lazy_defers_writebacks(self, quad_machine):
        workload = generate_workload("Apsi", scale=0.1)
        eager = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        lazy = simulate(quad_machine, MULTI_T_MV_LAZY, workload)
        # Same data eventually reaches memory, so write-back counts are
        # comparable; but laziness shifts them off the commit path. The
        # observable difference is the token-hold time, not the count.
        assert lazy.traffic.line_writebacks > 0
        assert lazy.token_hold_cycles < eager.token_hold_cycles

    def test_remote_fetches_counted_for_forwarding(self, tiny_machine):
        from repro.workloads.base import DEP_BASE

        workload = make_workload(
            "fwd",
            make_task(0, write(DEP_BASE), compute(50)),
            make_task(1, compute(30_000), read(DEP_BASE)),
        )
        result = simulate(tiny_machine, MULTI_T_MV_EAGER, workload)
        assert (result.traffic.remote_cache_fetches
                + result.traffic.memory_fetches) >= 1

    def test_overflow_traffic_under_pressure(self, fast_costs):
        from repro.core.config import CacheGeometry, NUMA_16, scaled_machine
        from repro.workloads.base import PRIV_BASE

        machine = scaled_machine(NUMA_16, 2).with_costs(fast_costs)
        machine = machine.with_l2(CacheGeometry(size_bytes=1024, assoc=2))
        tasks = []
        for tid in range(6):
            ops = [compute(500)]
            for j in range(20):
                ops.append(write(PRIV_BASE + j * 16 + tid))
            ops.append(compute(20_000))
            tasks.append(make_task(tid, *ops))
        workload = make_workload("spill", *tasks)
        amm = simulate(machine, MULTI_T_MV_EAGER, workload)
        fmm = simulate(machine, MULTI_T_MV_FMM, workload)
        assert amm.traffic.overflow_spills > 0
        assert fmm.traffic.overflow_spills == 0

    def test_total_messages_sum(self):
        from repro.core.results import TrafficStats

        traffic = TrafficStats(remote_cache_fetches=1, memory_fetches=2,
                               line_writebacks=3, vcl_merges=4,
                               overflow_spills=5, overflow_fetches=6)
        assert traffic.total_messages() == 21
