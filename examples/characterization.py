#!/usr/bin/env python3
"""Characterize the seven applications the way the paper's Table 3 does.

For every synthetic application, measures instructions per task, the
commit/execution ratio on both machines, load imbalance, privatization
share, and squash frequency — then prints them next to the paper's
reported values so the calibration is auditable.

Run:  python examples/characterization.py [--scale 0.3]
"""

import argparse

from repro import APPLICATIONS, APPLICATION_ORDER, CMP_8, NUMA_16
from repro.analysis.report import render_table
from repro.core.engine import simulate
from repro.core.taxonomy import MULTI_T_MV_EAGER
from repro.workloads.apps import generate_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3,
                        help="workload scale (default 0.3)")
    args = parser.parse_args()

    rows = []
    for app in APPLICATION_ORDER:
        profile = APPLICATIONS[app]
        workload = generate_workload(app, scale=args.scale)
        numa = simulate(NUMA_16, MULTI_T_MV_EAGER, workload)
        cmp_ = simulate(CMP_8, MULTI_T_MV_EAGER, workload)
        rows.append((
            app,
            f"{workload.mean_instructions() / 1000:.1f}k",
            f"{numa.commit_exec_ratio():.1%}",
            f"{profile.paper.commit_exec_numa_pct:.1f}%",
            f"{cmp_.commit_exec_ratio():.1%}",
            f"{profile.paper.commit_exec_cmp_pct:.1f}%",
            f"{workload.imbalance_cv():.2f} ({profile.paper.load_imbalance})",
            f"{numa.priv_footprint_fraction:.0%} "
            f"({profile.paper.priv_footprint_pct:.0f}%)",
            f"{numa.squashed_executions / numa.n_tasks:.2f}",
        ))

    print(render_table(
        ["Appl", "Instr/task", "C/E NUMA", "paper", "C/E CMP", "paper",
         "Imbalance (paper class)", "Priv (paper)", "Squash/task"],
        rows,
        title=("Application characteristics, measured vs paper "
               "(Table 3 / Figure 1)"),
    ))
    print("\nInstruction counts and footprints are scaled down from the "
          "paper's Fortran applications (DESIGN.md §6); the ratios that "
          "drive the evaluation — commit/execution, imbalance class, "
          "privatization share, squash frequency — are calibrated to "
          "match.")


if __name__ == "__main__":
    main()
