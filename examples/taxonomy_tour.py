#!/usr/bin/env python3
"""Taxonomy tour: one application under every evaluated buffering scheme.

Walks the paper's upgrade path — SingleT Eager AMM up to MultiT&MV FMM —
showing for each scheme its required hardware supports (Table 1/2), a
complexity score (Section 3.3.5), and the measured execution time, so the
complexity-benefit tradeoff is visible in one table.

Run:  python examples/taxonomy_tour.py [app]
"""

import sys

from repro import (
    APPLICATION_ORDER,
    EVALUATED_SCHEMES,
    NUMA_16,
    complexity_score,
    generate_workload,
    required_supports,
    simulate,
    simulate_sequential,
)
from repro.analysis.report import render_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Bdna"
    if app not in APPLICATION_ORDER:
        raise SystemExit(f"unknown app {app!r}; pick one of "
                         f"{', '.join(APPLICATION_ORDER)}")

    workload = generate_workload(app, scale=0.4)
    sequential = simulate_sequential(NUMA_16, workload)

    rows = []
    baseline_cycles = None
    for scheme in EVALUATED_SCHEMES:
        result = simulate(NUMA_16, scheme, workload)
        if baseline_cycles is None:
            baseline_cycles = result.total_cycles
        supports = "+".join(sorted(s.name for s in
                                   required_supports(scheme))) or "(none)"
        rows.append((
            scheme.name,
            supports,
            complexity_score(scheme),
            result.total_cycles / baseline_cycles,
            result.speedup_over(sequential.total_cycles),
            result.violation_events,
        ))

    print(render_table(
        ["Scheme", "Supports", "Complexity", "Norm. time", "Speedup",
         "Squash events"],
        rows,
        title=(f"Complexity-benefit tradeoff for {app} on "
               f"{NUMA_16.name} (time normalized to SingleT Eager AMM)"),
    ))
    print("\nReading guide: each step down the table adds hardware "
          "(higher complexity score); the paper's claim is that the "
          "largest benefit per unit of added complexity comes from "
          "MultiT&MV, then laziness, with FMM only paying off under "
          "buffer pressure and hurting under frequent squashes.")


if __name__ == "__main__":
    main()
