#!/usr/bin/env python3
"""Building a custom speculative loop and watching the mechanisms fire.

Constructs, by hand, the two patterns the paper's analysis revolves around:

1. the **mostly-privatization** loop of Figure 1-(b) — every task writes
   ``work(k)`` before reading it, so each task creates a new version of the
   same variable; MultiT&SV stalls, MultiT&MV does not;
2. a **cross-task dependence** — a late write in task 0 feeding an early
   read in task 1, which manifests as an out-of-order RAW, a squash, and a
   re-execution.

Run:  python examples/custom_workload.py
"""

from repro import (
    MULTI_T_MV_EAGER,
    MULTI_T_SV_EAGER,
    NUMA_16,
    Workload,
    simulate,
)
from repro.core.config import scaled_machine
from repro.processor.processor import CycleCategory
from repro.tls.task import OP_COMPUTE, OP_READ, OP_WRITE, TaskSpec
from repro.workloads.base import DEP_BASE, PRIV_BASE


def privatization_loop(n_tasks: int = 8, work_elements: int = 6) -> Workload:
    """Speculative_Parallel do i: work(k) written then read by every task."""
    tasks = []
    for i in range(n_tasks):
        ops = [(OP_COMPUTE, 2_000)]
        for k in range(work_elements):
            ops.append((OP_WRITE, PRIV_BASE + k * 16))   # work(k) = ...
            ops.append((OP_COMPUTE, 500))
        for k in range(work_elements):
            ops.append((OP_READ, PRIV_BASE + k * 16))    # ... = work(k)
            ops.append((OP_COMPUTE, 500))
        tasks.append(TaskSpec(task_id=i, ops=tuple(ops)))
    return Workload(name="work-array", tasks=tuple(tasks))


def dependence_loop() -> Workload:
    """Task 0 produces a value late; task 1 consumes it early."""
    tasks = [
        TaskSpec(0, ((OP_COMPUTE, 40_000), (OP_WRITE, DEP_BASE),
                     (OP_COMPUTE, 500))),
        TaskSpec(1, ((OP_COMPUTE, 500), (OP_READ, DEP_BASE),
                     (OP_COMPUTE, 20_000))),
        TaskSpec(2, ((OP_COMPUTE, 15_000),)),
    ]
    return Workload(name="dependence", tasks=tuple(tasks))


def main() -> None:
    machine = scaled_machine(NUMA_16, 4)

    print("=== Mostly-privatization loop (Figure 1-(b) pattern) ===")
    workload = privatization_loop()
    workload.validate_read_your_writes()
    for scheme in (MULTI_T_SV_EAGER, MULTI_T_MV_EAGER):
        result = simulate(machine, scheme, workload)
        sv_stall = result.cycles_by_category[CycleCategory.SV_STALL]
        print(f"{scheme.name:22} {result.total_cycles:>10,.0f} cycles | "
              f"version-conflict stall {sv_stall:>9,.0f} cycles")
    print("MultiT&SV serializes on the second local version of work(k); "
          "MultiT&MV buffers multiple versions per line and never stalls.\n")

    print("=== Cross-task dependence (out-of-order RAW) ===")
    workload = dependence_loop()
    result = simulate(machine, MULTI_T_MV_EAGER, workload)
    print(f"violations detected : {result.violation_events}")
    print(f"task executions squashed: {result.squashed_executions}")
    print(f"wasted busy cycles  : {result.wasted_busy_cycles:,.0f}")
    print(f"read finally observed version: "
          f"{result.observed_reads[(1, DEP_BASE)]} (task 0's write)")
    assert result.memory_image == workload.sequential_image()
    print("After the squash and re-execution, memory matches sequential "
          "execution exactly.")


if __name__ == "__main__":
    main()
