#!/usr/bin/env python3
"""Beyond the base protocol: ORB commits, HLAP, and application speedups.

Three extensions the paper discusses but does not evaluate:

1. **ORB eager commits** (Section 4.1 footnote) — committing by issuing
   ownership requests (Steffan et al.) instead of data write-backs;
2. **High-Level Access Patterns** (excluded from the base protocol, from
   Prvulovic01) — the compiler declares the ``work`` array mostly-private,
   so speculative writes skip fetching the stale previous version;
3. **whole-application speedup** (Section 4.2) — weighting the speculative
   section's speedup by its share of sequential execution time.

Run:  python examples/extensions.py
"""

from dataclasses import replace

from repro import MULTI_T_MV_EAGER, MULTI_T_MV_LAZY, NUMA_16, Simulation, simulate
from repro.analysis.application import application_speedup
from repro.analysis.report import render_table
from repro.workloads.apps import generate_workload


def main() -> None:
    workload = generate_workload("Apsi", scale=0.4)

    print("=== ORB vs write-back eager commits ===")
    orb_machine = NUMA_16.with_costs(
        replace(NUMA_16.costs, eager_commit_mode="orb"))
    writeback = simulate(NUMA_16, MULTI_T_MV_EAGER, workload)
    orb = simulate(orb_machine, MULTI_T_MV_EAGER, workload)
    lazy = simulate(NUMA_16, MULTI_T_MV_LAZY, workload)
    print(render_table(
        ["Commit mechanism", "Total cycles", "Token hold cycles"],
        [
            ("Eager, data write-backs", writeback.total_cycles,
             writeback.token_hold_cycles),
            ("Eager, ORB ownership requests", orb.total_cycles,
             orb.token_hold_cycles),
            ("Lazy (for reference)", lazy.total_cycles,
             lazy.token_hold_cycles),
        ],
    ))

    print("\n=== High-Level Access Patterns (mostly-private declaration) ===")
    base = Simulation(NUMA_16, MULTI_T_MV_LAZY, workload).run()
    hlap = Simulation(NUMA_16, MULTI_T_MV_LAZY, workload,
                      high_level_patterns=True).run()
    gain = 1 - hlap.total_cycles / base.total_cycles
    print(f"base protocol : {base.total_cycles:>10,.0f} cycles")
    print(f"with HLAP     : {hlap.total_cycles:>10,.0f} cycles "
          f"({gain:.0%} faster — no stale-version fetch on work())")

    print("\n=== Whole-application speedup (Amdahl over %Tseq) ===")
    rows = []
    for app in ("Tree", "Apsi", "Bdna"):
        summary = application_speedup(NUMA_16, MULTI_T_MV_LAZY, app,
                                      scale=0.4)
        rows.append((
            app, f"{summary.loop_fraction:.0%}",
            f"{summary.loop_speedup:.1f}x",
            f"{summary.overall_rest_sequential:.2f}x",
            f"{summary.overall_rest_parallel:.2f}x",
        ))
    print(render_table(
        ["App", "loops %Tseq", "loop speedup", "overall (rest seq.)",
         "overall (rest parallel)"],
        rows,
    ))
    print("\nTree's loops are 92% of the program, so the loop speedup "
          "carries through; Apsi's are only 29%, so even a large loop "
          "speedup moves the whole application modestly — the paper's "
          "Section 4.2 weighting, made explicit.")


if __name__ == "__main__":
    main()
