#!/usr/bin/env python3
"""Visualize execution and commit wavefronts of a real application.

Runs a scaled-down application under Eager and Lazy merging, renders the
per-processor timeline (task digits executing, ``c`` committing), and uses
the trace recorder to measure how far the commit wavefront lags the
execution wavefront — the distance Figure 6 of the paper illustrates.

Run:  python examples/wavefronts.py [app]
"""

import sys

from repro import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    NUMA_16,
    Simulation,
    TraceEvent,
    TraceRecorder,
    generate_workload,
)
from repro.analysis.report import render_task_timeline
from repro.core.config import scaled_machine


def wavefront_lag(trace: TraceRecorder) -> float:
    """Mean cycles between a task finishing and its commit completing."""
    done = {r.task_id: r.time for r in trace.records(TraceEvent.TASK_DONE)}
    lags = [
        r.time - done[r.task_id]
        for r in trace.records(TraceEvent.COMMIT_DONE)
        if r.task_id in done
    ]
    return sum(lags) / len(lags) if lags else 0.0


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Apsi"
    machine = scaled_machine(NUMA_16, 4)
    workload = generate_workload(app, scale=0.08)

    for scheme in (MULTI_T_MV_EAGER, MULTI_T_MV_LAZY):
        trace = TraceRecorder()
        result = Simulation(machine, scheme, workload, trace=trace).run()
        intervals = [
            (t.task_id, t.proc_id, t.start_time, t.finish_time,
             t.commit_start, t.commit_end)
            for t in result.task_timings
        ]
        print(render_task_timeline(
            intervals, result.total_cycles, machine.n_procs,
            title=(f"\n[{scheme.name}] {app}: "
                   f"{result.total_cycles:,.0f} cycles, token held "
                   f"{result.token_hold_cycles:,.0f} cycles"),
        ))
        print(f"   mean finish-to-commit lag: {wavefront_lag(trace):,.0f} "
              f"cycles")

    print("\nUnder Eager merging the commit wavefront (the c's) trails the "
          "execution wavefront and serializes behind the token; Lazy "
          "merging compresses each commit to a token pass, so tasks retire "
          "almost as soon as their turn comes.")


if __name__ == "__main__":
    main()
