#!/usr/bin/env python3
"""Coarse recovery (LRPD-style) vs fine-grained TLS as violations grow.

The taxonomy's Coarse Recovery class (Figure 4: LRPD, SUDS, ...) keeps no
fine-grained history: a single dependence violation squashes the whole
speculative section and re-runs it sequentially. This example sweeps the
dependence-violation rate of a Euler-like loop and compares that strategy
against fine-grained MultiT&MV Lazy AMM, which only re-executes the
offending tasks.

Run:  python examples/coarse_vs_fine.py
"""

from dataclasses import replace

from repro import MULTI_T_MV_LAZY, NUMA_16, simulate, simulate_coarse_recovery
from repro.analysis.report import render_table
from repro.workloads.apps import APPLICATIONS


def main() -> None:
    base = APPLICATIONS["Euler"]
    rows = []
    for rate in (0.0, 0.01, 0.03, 0.08):
        profile = replace(base, name=f"Euler@{rate}", dep_victim_rate=rate)
        workload = profile.generate(scale=0.3)
        fine = simulate(NUMA_16, MULTI_T_MV_LAZY, workload)
        coarse = simulate_coarse_recovery(NUMA_16, workload)
        rows.append((
            f"{rate:.2f}",
            f"{fine.total_cycles:,.0f}",
            fine.violation_events,
            f"{coarse.total_cycles:,.0f}",
            "section re-run" if coarse.violated else "copy-out only",
            f"{coarse.total_cycles / fine.total_cycles:.2f}x",
        ))

    print(render_table(
        ["dep rate", "fine-grained (cyc)", "violations",
         "coarse LRPD (cyc)", "coarse outcome", "coarse/fine"],
        rows,
        title=("Fine-grained TLS vs coarse (section-level) recovery on a "
               "Euler-like loop"),
    ))
    print("\nWith no violations, coarse recovery is competitive (it only "
          "pays a software copy-out commit). As soon as violations appear, "
          "it forfeits all parallel work and re-runs sequentially — the "
          "motivation for the fine-grained buffering the paper studies.")


if __name__ == "__main__":
    main()
