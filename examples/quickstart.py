#!/usr/bin/env python3
"""Quickstart: simulate one application under two buffering schemes.

Generates the synthetic Apsi workload (the paper's Figure 1-(b)
mostly-privatization loop), runs it on the 16-node CC-NUMA under the
simplest scheme (SingleT Eager AMM) and the paper's recommended one
(MultiT&MV Lazy AMM), and prints execution time, busy/stall split, and
speedup over sequential execution.

Run:  python examples/quickstart.py
"""

from repro import (
    MULTI_T_MV_LAZY,
    NUMA_16,
    SINGLE_T_EAGER,
    generate_workload,
    simulate,
    simulate_sequential,
)


def main() -> None:
    # scale=0.5 halves the task count so the example runs in a few seconds;
    # drop the argument for the full benchmark-sized workload.
    workload = generate_workload("Apsi", scale=0.5)
    print(f"Workload: {workload.description}")

    sequential = simulate_sequential(NUMA_16, workload)
    print(f"Sequential execution: {sequential.total_cycles:,.0f} cycles "
          f"({sequential.memory_fraction:.0%} memory time)\n")

    for scheme in (SINGLE_T_EAGER, MULTI_T_MV_LAZY):
        result = simulate(NUMA_16, scheme, workload)
        speedup = result.speedup_over(sequential.total_cycles)
        print(f"{scheme.name:22} {result.total_cycles:>12,.0f} cycles | "
              f"busy {result.busy_fraction():5.1%} | "
              f"speedup {speedup:4.1f}x | "
              f"commit/exec {result.commit_exec_ratio():5.1%}")

    print("\nMultiT&MV buffering plus lazy merging removes both the "
          "task-commit wait and the commit wavefront from the critical "
          "path — the paper's recommended upgrade path.")


if __name__ == "__main__":
    main()
